package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"paco/internal/obs"
	"paco/internal/server/expiry"
	"paco/internal/trace"
)

// Table is the service view of sessions: an N-way sharded in-memory
// store with per-shard locks and one apply worker per shard. Ingest
// never applies events inline — it decodes, enqueues onto the session's
// bounded queue, and wakes the shard worker, so the HTTP handler's cost
// is parsing plus a queue append regardless of estimator count. The
// worker drains whole queues per wakeup (per-shard batching), publishes
// a fresh snapshot to live subscribers after each drain, and an idle
// sweeper built on the same expiry.Tracker as federation leases evicts
// sessions that stop talking.
//
// Overload answers, in order: a full table rejects Open (ErrTableFull →
// 503), a full per-session queue rejects the chunk with
// *BackpressureError (→ 429 + Retry-After) after rolling the decoder
// back so the client retries the identical bytes, and nothing ever
// blocks or silently drops an acknowledged event.
type Table struct {
	shards  []*shard
	tracker *expiry.Tracker
	metrics Metrics
	rec     *obs.Recorder
	log     *slog.Logger
	now     func() time.Time

	maxSessions int
	maxQueued   int
	retryAfter  time.Duration

	seq    atomic.Uint64
	open   atomic.Int64
	queued atomic.Int64

	stop     chan struct{}
	stopping atomic.Bool
	wg       sync.WaitGroup
}

// Metrics are the table's exported instruments, registered by the owner
// (the server wires them as paco_session_*). Any nil instrument is
// skipped — obs instruments are nil-safe.
type Metrics struct {
	Opened         *obs.Counter    // sessions opened
	Closed         *obs.CounterVec // sessions closed, by reason (client/evicted/shutdown)
	OpenRejected   *obs.Counter    // opens rejected by the session cap
	Events         *obs.Counter    // events accepted into queues
	Backpressure   *obs.Counter    // ingest chunks rejected by a full queue
	IngestDuration *obs.Histogram  // seconds per ingest call (decode + enqueue)
	ApplyBatch     *obs.Histogram  // events applied per worker drain
}

// Close reasons, the label values of Metrics.Closed.
const (
	CloseClient   = "client"   // explicit DELETE
	CloseEvicted  = "evicted"  // idle TTL sweep
	CloseShutdown = "shutdown" // table shutdown
)

// TableConfig sizes a Table. The zero value serves.
type TableConfig struct {
	// Shards is the lock/worker fan-out (default 8).
	Shards int
	// MaxSessions caps concurrently open sessions (default 1024).
	MaxSessions int
	// MaxQueuedEvents caps one session's decoded-but-unapplied events;
	// ingest past it is rejected with *BackpressureError (default
	// 65536). The cap is a high-water mark: a chunk arriving at an
	// empty queue is always accepted, whatever its size, so a client
	// whose chunks exceed the cap still makes progress one chunk at a
	// time instead of looping on 429s forever. (Chunk size itself is
	// bounded by the HTTP layer's body cap.)
	MaxQueuedEvents int
	// IdleTTL evicts sessions with no ingest or score reads for this
	// long (default 5m). SweepInterval is the eviction cadence
	// (default IdleTTL/4).
	IdleTTL       time.Duration
	SweepInterval time.Duration
	// RetryAfter is the backoff hint carried by *BackpressureError
	// (default 1s).
	RetryAfter time.Duration

	Metrics  Metrics
	Recorder *obs.Recorder // session spans (nil disables)
	Log      *slog.Logger  // nil discards
	Now      func() time.Time
}

type shard struct {
	t *Table

	mu       sync.Mutex
	sessions map[string]*entry
	tombs    map[string]tombstone
	dirty    []*entry

	wake chan struct{} // cap 1: coalesced worker wakeups
}

// tombstone remembers why a recently closed session went away, so a
// straggling request (a DELETE racing the idle sweeper, a poll after an
// eviction) gets a deterministic *GoneError instead of a flaky
// ErrNotFound. Tombstones age out one IdleTTL after the close.
type tombstone struct {
	reason string
	at     time.Time
}

// Ingest formats. A session locks onto whichever format its first chunk
// used; mixing formats mid-stream is a client error.
type Format string

const (
	FormatBinary Format = "binary" // internal/trace v1/v2 frames
	FormatNDJSON Format = "ndjson" // one JSON event per line
)

// entry is one live session plus its ingest state. All fields are
// guarded by the owning shard's mutex.
type entry struct {
	id   string
	key  string
	sess *Session

	format Format        // locked at first ingest; "" before
	dec    trace.Decoder // binary ingest state
	ndrem  []byte        // NDJSON partial-line remainder

	queue   [][]trace.Event
	nqueued int
	inDirty bool

	subs map[chan Scores]struct{}
	span obs.Span
}

// Table errors and their HTTP mappings (made by the server layer).
var (
	ErrNotFound  = errors.New("session: no such session")        // 404
	ErrTableFull = errors.New("session: session table full")     // 503
	ErrShutdown  = errors.New("session: table is shutting down") // 503
)

// GoneError reports an operation on a session that existed but has
// already closed; Reason is the close reason (CloseClient, CloseEvicted,
// CloseShutdown). The server layer maps it to HTTP 410 — distinct from
// the 404 an ID the table never issued gets — so a client whose DELETE
// races the idle sweeper sees a deterministic verdict naming the reason
// rather than a flaky not-found.
type GoneError struct {
	Reason string
}

func (e *GoneError) Error() string {
	return fmt.Sprintf("session: closed (%s)", e.Reason)
}

// BackpressureError rejects an ingest chunk whose events would overflow
// the session's queue. The decoder state has been rolled back: retrying
// the same bytes after RetryAfter is correct and lossless.
type BackpressureError struct {
	RetryAfter time.Duration
	Queued     int // events already queued
	Limit      int
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("session: queue full (%d/%d events); retry after %s", e.Queued, e.Limit, e.RetryAfter)
}

// FormatError rejects a chunk in a different encoding than the session's
// stream started with.
type FormatError struct {
	Have, Got Format
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("session: stream is %s, chunk is %s", e.Have, e.Got)
}

// NewTable builds and starts a table: one worker goroutine per shard
// plus the idle sweeper. Shutdown releases them.
func NewTable(cfg TableConfig) *Table {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.MaxQueuedEvents <= 0 {
		cfg.MaxQueuedEvents = 65536
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = 5 * time.Minute
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTTL / 4
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Table{
		shards:      make([]*shard, cfg.Shards),
		tracker:     expiry.New(cfg.IdleTTL),
		metrics:     cfg.Metrics,
		rec:         cfg.Recorder,
		log:         cfg.Log,
		now:         cfg.Now,
		maxSessions: cfg.MaxSessions,
		maxQueued:   cfg.MaxQueuedEvents,
		retryAfter:  cfg.RetryAfter,
		stop:        make(chan struct{}),
	}
	for i := range t.shards {
		sh := &shard{t: t, sessions: make(map[string]*entry),
			tombs: make(map[string]tombstone), wake: make(chan struct{}, 1)}
		t.shards[i] = sh
		t.wg.Add(1)
		go sh.run()
	}
	t.wg.Add(1)
	go t.sweep(cfg.SweepInterval)
	return t
}

// Len reports open sessions; QueuedEvents reports decoded events
// awaiting application across all sessions. Both back gauges.
func (t *Table) Len() int          { return int(t.open.Load()) }
func (t *Table) QueuedEvents() int { return int(t.queued.Load()) }

// shardFor routes a session ID to its shard.
func (t *Table) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return t.shards[h.Sum32()%uint32(len(t.shards))]
}

// Open creates a session from spec and returns its ID, the spec's
// content key, and the normalized spec. traceID correlates the session's
// span and logs (see obs.NewTraceID).
func (t *Table) Open(spec Spec, traceID string) (id, key string, norm Spec, err error) {
	if t.stopping.Load() {
		return "", "", Spec{}, ErrShutdown
	}
	norm, err = spec.Normalized()
	if err != nil {
		return "", "", Spec{}, err
	}
	key, err = norm.Key()
	if err != nil {
		return "", "", Spec{}, err
	}
	// Reserve a slot before building (estimator tables are the real
	// allocation); roll back if over the cap.
	if t.open.Add(1) > int64(t.maxSessions) {
		t.open.Add(-1)
		t.metrics.OpenRejected.Inc()
		return "", "", Spec{}, ErrTableFull
	}
	sess, err := New(norm)
	if err != nil {
		t.open.Add(-1)
		return "", "", Spec{}, err
	}
	// The ID leads with the spec key so equivalent specs are visibly
	// related; the sequence keeps each stream's state private.
	id = fmt.Sprintf("s-%s-%06d", key[:12], t.seq.Add(1))
	e := &entry{id: id, key: key, sess: sess, subs: make(map[chan Scores]struct{})}
	e.span = t.rec.Start(traceID, "session", id, 0)
	e.span.Set("key", key)

	sh := t.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = e
	sh.mu.Unlock()
	t.tracker.Touch(id, t.now())
	t.metrics.Opened.Inc()
	t.log.Info("session opened", "session", id, "key", key, "trace", traceID)
	return id, key, norm, nil
}

// Ingest decodes one chunk in the session's stream format and enqueues
// the completed events. It returns how many events the chunk completed
// and the queue depth after the append. On *BackpressureError nothing
// was consumed: the decoder is rolled back and the client retries the
// identical bytes. Decode errors are terminal for the session's stream
// but leave the session readable (and closeable).
func (t *Table) Ingest(id string, format Format, chunk []byte) (accepted, queued int, err error) {
	start := time.Now()
	defer func() { t.metrics.IngestDuration.Observe(time.Since(start).Seconds()) }()

	sh := t.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.sessions[id]
	if e == nil {
		return 0, 0, sh.missLocked(id)
	}
	if e.format == "" {
		e.format = format
	} else if e.format != format {
		return 0, 0, &FormatError{Have: e.format, Got: format}
	}

	// Decode fully before committing anything, so a rejected chunk can
	// be rolled back to byte-exact stream state.
	var evs []trace.Event
	switch format {
	case FormatBinary:
		snap := e.dec.Snapshot()
		if err := e.dec.Feed(chunk, func(ev trace.Event) error {
			evs = append(evs, ev)
			return nil
		}); err != nil {
			e.dec.Restore(snap)
			return 0, e.nqueued, err
		}
		if e.nqueued > 0 && e.nqueued+len(evs) > t.maxQueued {
			e.dec.Restore(snap)
			t.metrics.Backpressure.Inc()
			return 0, e.nqueued, &BackpressureError{RetryAfter: t.retryAfter, Queued: e.nqueued, Limit: t.maxQueued}
		}
	case FormatNDJSON:
		data := chunk
		if len(e.ndrem) > 0 {
			data = append(append([]byte(nil), e.ndrem...), chunk...)
		}
		var rest []byte
		evs, rest, err = DecodeNDJSON(data)
		if err != nil {
			return 0, e.nqueued, err
		}
		if e.nqueued > 0 && e.nqueued+len(evs) > t.maxQueued {
			t.metrics.Backpressure.Inc()
			return 0, e.nqueued, &BackpressureError{RetryAfter: t.retryAfter, Queued: e.nqueued, Limit: t.maxQueued}
		}
		e.ndrem = append(e.ndrem[:0], rest...)
	default:
		return 0, 0, fmt.Errorf("session: unknown ingest format %q", format)
	}

	if len(evs) > 0 {
		e.queue = append(e.queue, evs)
		e.nqueued += len(evs)
		t.queued.Add(int64(len(evs)))
		t.metrics.Events.Add(uint64(len(evs)))
		sh.markDirtyLocked(e)
	}
	t.tracker.Touch(id, t.now())
	return len(evs), e.nqueued, nil
}

// Scores snapshots a session, reporting its current queue depth, and
// counts as activity for the idle sweep.
func (t *Table) Scores(id string) (Scores, error) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.sessions[id]
	if e == nil {
		return Scores{}, sh.missLocked(id)
	}
	t.tracker.Touch(id, t.now())
	return e.snapshotLocked(), nil
}

// Subscribe registers a live-score watcher: the channel carries a
// snapshot after every worker drain (latest-wins — a slow reader skips
// intermediate snapshots, never blocks a worker) and is closed after the
// final snapshot when the session closes. cancel unsubscribes early.
func (t *Table) Subscribe(id string) (<-chan Scores, func(), error) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.sessions[id]
	if e == nil {
		return nil, nil, sh.missLocked(id)
	}
	ch := make(chan Scores, 1)
	e.subs[ch] = struct{}{}
	ch <- e.snapshotLocked() // prime with the current state
	cancel := func() {
		sh.mu.Lock()
		if _, ok := e.subs[ch]; ok {
			delete(e.subs, ch)
			close(ch)
		}
		sh.mu.Unlock()
	}
	return ch, cancel, nil
}

// Close removes the session, applies whatever its queue still holds,
// squashes in-flight branches, and returns the final scores. Subscribers
// receive the final snapshot and their channels close.
func (t *Table) Close(id, reason string) (Scores, error) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.sessions[id]
	if e == nil {
		return Scores{}, sh.missLocked(id)
	}
	return t.closeEntryLocked(sh, e, reason), nil
}

// closeEntryLocked is the one session teardown path (DELETE, eviction,
// shutdown), with the shard lock held: drain the queue so no
// acknowledged event is lost, settle the final snapshot into every
// subscriber, and leave a tombstone so later requests for the ID get a
// deterministic GoneError carrying the reason.
func (t *Table) closeEntryLocked(sh *shard, e *entry, reason string) Scores {
	delete(sh.sessions, e.id)
	t.tracker.Forget(e.id)
	sh.tombs[e.id] = tombstone{reason: reason, at: t.now()}

	sh.applyLocked(e)
	final := e.sess.Close()
	for ch := range e.subs {
		sendLatest(ch, final)
		close(ch)
	}
	e.subs = nil
	e.span.Set("reason", reason)
	if errMsg := final.Error; errMsg != "" {
		e.span.End(errMsg)
	} else {
		e.span.End("")
	}
	t.open.Add(-1)
	t.metrics.Closed.With(reason).Inc()
	t.log.Info("session closed", "session", e.id, "reason", reason,
		"events", final.Events, "cycles", final.Cycles)
	return final
}

// missLocked maps a missing ID, with the shard lock held, to its
// terminal error: *GoneError while a tombstone remembers the close,
// ErrNotFound for IDs the table never issued (or whose tombstone has
// aged out).
func (sh *shard) missLocked(id string) error {
	if tb, ok := sh.tombs[id]; ok {
		return &GoneError{Reason: tb.reason}
	}
	return ErrNotFound
}

// Shutdown stops the workers and the sweeper, then closes every
// remaining session (reason "shutdown"), draining their queues. The
// table rejects new work afterwards.
func (t *Table) Shutdown() {
	if !t.stopping.CompareAndSwap(false, true) {
		return
	}
	close(t.stop)
	t.wg.Wait()
	for _, sh := range t.shards {
		sh.mu.Lock()
		ids := make([]string, 0, len(sh.sessions))
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
		for _, id := range ids {
			t.Close(id, CloseShutdown)
		}
	}
}

// sweep is the eviction loop: every interval, sessions whose last
// activity is older than the TTL close with reason "evicted".
func (t *Table) sweep(interval time.Duration) {
	defer t.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.sweepOnce(t.now())
		}
	}
}

// sweepOnce runs one eviction pass. Eviction is two-phase against the
// tracker — Candidates lists without removing, then ExpireIf confirms
// each claim under the candidate's shard lock. Ingest and Scores touch
// the tracker while holding that same shard lock, so a session touched
// after candidacy is observed here as renewed and survives the sweep;
// the single-call Expired API removed keys at listing time and lost
// exactly that interleaving. Expired tombstones purge on the same pass.
func (t *Table) sweepOnce(now time.Time) {
	t.evictExpired(t.tracker.Candidates(now), now)
	for _, sh := range t.shards {
		sh.mu.Lock()
		for id, tb := range sh.tombs {
			if now.Sub(tb.at) >= t.tracker.TTL() {
				delete(sh.tombs, id)
			}
		}
		sh.mu.Unlock()
	}
}

// evictExpired is sweepOnce's claim phase, split out so the
// sweep-vs-touch test can interleave a renewal between candidacy and
// the claim.
func (t *Table) evictExpired(candidates []string, now time.Time) {
	for _, id := range candidates {
		sh := t.shardFor(id)
		sh.mu.Lock()
		e := sh.sessions[id]
		if e == nil || !t.tracker.ExpireIf(id, now) {
			sh.mu.Unlock()
			continue
		}
		t.closeEntryLocked(sh, e, CloseEvicted)
		sh.mu.Unlock()
		t.log.Info("session evicted", "session", id, "idle_ttl", t.tracker.TTL().String())
	}
}

// markDirtyLocked queues the entry for its shard worker and wakes it.
func (sh *shard) markDirtyLocked(e *entry) {
	if !e.inDirty {
		e.inDirty = true
		sh.dirty = append(sh.dirty, e)
	}
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard worker: drain dirty sessions until shutdown.
func (sh *shard) run() {
	defer sh.t.wg.Done()
	for {
		select {
		case <-sh.t.stop:
			return
		case <-sh.wake:
			sh.drain()
		}
	}
}

// drain applies every dirty session's queue and publishes fresh
// snapshots to its subscribers.
func (sh *shard) drain() {
	for {
		sh.mu.Lock()
		if len(sh.dirty) == 0 {
			sh.mu.Unlock()
			return
		}
		e := sh.dirty[0]
		sh.dirty[0] = nil
		sh.dirty = sh.dirty[1:]
		e.inDirty = false
		sh.applyLocked(e)
		if len(e.subs) > 0 {
			sc := e.snapshotLocked()
			for ch := range e.subs {
				sendLatest(ch, sc)
			}
		}
		sh.mu.Unlock()
	}
}

// applyLocked feeds the entry's queued batches through the session. A
// latched stream error drops the rest of the queue — the session stops
// evolving but keeps serving (and reporting the error in) scores.
func (sh *shard) applyLocked(e *entry) {
	if e.nqueued == 0 {
		return
	}
	n := e.nqueued
	for _, batch := range e.queue {
		if err := e.sess.ApplyAll(batch); err != nil {
			break
		}
	}
	e.queue = nil
	e.nqueued = 0
	sh.t.queued.Add(int64(-n))
	sh.t.metrics.ApplyBatch.Observe(float64(n))
}

// snapshotLocked snapshots the entry's session plus its queue depth.
func (e *entry) snapshotLocked() Scores {
	sc := e.sess.Scores()
	sc.Queued = e.nqueued
	return sc
}

// sendLatest delivers latest-wins on a buffered-1 channel: replace a
// stale undelivered snapshot rather than blocking the shard worker.
func sendLatest(ch chan Scores, sc Scores) {
	for {
		select {
		case ch <- sc:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}
