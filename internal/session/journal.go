package session

import (
	"bytes"
	"fmt"

	"paco/internal/trace"
)

// Journal is an append-only log of acknowledged ingest chunks for one
// session — the replay source that lets a coordinator re-create a
// routed session on a surviving worker after its owner dies. It stores
// chunk bytes verbatim: both wire formats are chunk-relocatable (the
// binary decoder resumes mid-record, NDJSON stitches partial lines), so
// replaying the chunks in order through the same decoders the table's
// ingest path uses reconstructs exactly the event stream the dead
// worker had acknowledged. A Journal is not safe for concurrent use;
// the owner serializes access.
type Journal struct {
	format Format
	chunks [][]byte
	nbytes int
}

// NewJournal returns an empty journal. The format locks at the first
// Append, mirroring how a session locks onto its first chunk's
// encoding.
func NewJournal() *Journal { return &Journal{} }

// Append records one acknowledged chunk (copying it — callers reuse
// buffers). Appending a chunk in a different format than the first is
// the same client error the table rejects with *FormatError.
func (j *Journal) Append(format Format, chunk []byte) error {
	if j.format == "" {
		j.format = format
	} else if j.format != format {
		return &FormatError{Have: j.format, Got: format}
	}
	j.chunks = append(j.chunks, append([]byte(nil), chunk...))
	j.nbytes += len(chunk)
	return nil
}

// Format returns the journal's locked stream format ("" while empty).
func (j *Journal) Format() Format { return j.format }

// Len reports recorded chunks; Bytes their total wire size.
func (j *Journal) Len() int   { return len(j.chunks) }
func (j *Journal) Bytes() int { return j.nbytes }

// Chunks returns the recorded chunks in append order. The slices share
// the journal's backing memory — callers must not mutate them.
func (j *Journal) Chunks() [][]byte { return j.chunks }

// Events decodes the whole journal back into its event stream through
// the chunk decoders the ingest path uses: the binary trace decoder
// resuming across chunk boundaries, or NDJSON with partial-line
// stitching (a final unterminated line is accepted, as IngestNDJSON
// accepts it).
func (j *Journal) Events() ([]trace.Event, error) {
	var evs []trace.Event
	switch j.format {
	case "":
		return nil, nil
	case FormatBinary:
		var dec trace.Decoder
		for _, chunk := range j.chunks {
			if err := dec.Feed(chunk, func(ev trace.Event) error {
				evs = append(evs, ev)
				return nil
			}); err != nil {
				return nil, err
			}
		}
	case FormatNDJSON:
		var rem []byte
		for _, chunk := range j.chunks {
			data := chunk
			if len(rem) > 0 {
				data = append(append([]byte(nil), rem...), chunk...)
			}
			batch, rest, err := DecodeNDJSON(data)
			if err != nil {
				return nil, err
			}
			evs = append(evs, batch...)
			rem = append(rem[:0], rest...)
		}
		if rem = bytes.TrimSpace(rem); len(rem) > 0 {
			ev, err := parseNDJSONLine(rem)
			if err != nil {
				return nil, err
			}
			evs = append(evs, ev)
		}
	default:
		return nil, fmt.Errorf("session: unknown journal format %q", j.format)
	}
	return evs, nil
}

// Replay scores the journal offline: a fresh session over the decoded
// event stream, closed for its final snapshot — the reference a
// failed-over session's finals are byte-compared against.
func (j *Journal) Replay(spec Spec) (Scores, error) {
	evs, err := j.Events()
	if err != nil {
		return Scores{}, err
	}
	s, err := New(spec)
	if err != nil {
		return Scores{}, err
	}
	if err := s.ApplyAll(evs); err != nil {
		return s.Close(), err
	}
	return s.Close(), nil
}
