package session

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"paco/internal/trace"
)

// TestJournalBinaryRoundTrip: chunks split at arbitrary (record-
// misaligned) boundaries decode back to the original event stream, and
// Replay of the journal is byte-equal in structure to offline Replay of
// the same trace — the failover identity the router depends on.
func TestJournalBinaryRoundTrip(t *testing.T) {
	evs := genEvents(17, 3000)
	raw := serialize(t, evs)
	spec := allKindsSpec()

	j := NewJournal()
	const chunk = 997 // coprime with the 23-byte record size
	for off := 0; off < len(raw); off += chunk {
		end := off + chunk
		if end > len(raw) {
			end = len(raw)
		}
		// Reuse one buffer across appends: Append must copy.
		buf := append([]byte(nil), raw[off:end]...)
		if err := j.Append(FormatBinary, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = 0xFF
		}
	}
	if j.Format() != FormatBinary || j.Bytes() != len(raw) {
		t.Fatalf("journal format=%q bytes=%d, want binary/%d", j.Format(), j.Bytes(), len(raw))
	}

	got, err := j.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("journal decoded %d events, want the original %d", len(got), len(evs))
	}

	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := j.Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, offline) {
		t.Fatalf("journal replay diverges from offline replay:\n journal %+v\n offline %+v", replayed, offline)
	}
}

// TestJournalNDJSONPartialLines: chunk boundaries mid-line stitch back
// together, and a final unterminated line is accepted — the same
// contract as the ingest path.
func TestJournalNDJSONPartialLines(t *testing.T) {
	evs := genEvents(23, 400)
	var doc bytes.Buffer
	for _, ev := range evs {
		line, err := MarshalNDJSON(ev)
		if err != nil {
			t.Fatal(err)
		}
		doc.Write(line)
	}
	raw := bytes.TrimSuffix(doc.Bytes(), []byte("\n")) // unterminated tail

	j := NewJournal()
	for off := 0; off < len(raw); off += 71 { // deliberately mid-line
		end := off + 71
		if end > len(raw) {
			end = len(raw)
		}
		if err := j.Append(FormatNDJSON, raw[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("journal decoded %d events, want %d", len(got), len(evs))
	}
}

// TestJournalFormatLock: the journal refuses a mid-stream format switch
// with the same error type the table uses.
func TestJournalFormatLock(t *testing.T) {
	j := NewJournal()
	if evs, err := j.Events(); err != nil || evs != nil {
		t.Fatalf("empty journal Events = %v, %v", evs, err)
	}
	if err := j.Append(FormatNDJSON, []byte("{\"kind\":\"cycle\",\"cycle\":64}\n")); err != nil {
		t.Fatal(err)
	}
	err := j.Append(FormatBinary, []byte{1, 2, 3})
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Have != FormatNDJSON || fe.Got != FormatBinary {
		t.Fatalf("format switch = %v, want *FormatError(ndjson, binary)", err)
	}
	if j.Len() != 1 {
		t.Fatalf("rejected chunk was recorded; Len = %d", j.Len())
	}
}
