package session

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paco/internal/trace"
)

// fakeClock is an injectable time source for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTable(t *testing.T, cfg TableConfig) *Table {
	t.Helper()
	tbl := NewTable(cfg)
	t.Cleanup(tbl.Shutdown)
	return tbl
}

// waitScores polls until cond holds on the session's scores (the worker
// applies asynchronously).
func waitScores(t *testing.T, tbl *Table, id string, cond func(Scores) bool) Scores {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sc, err := tbl.Scores(id)
		if err != nil {
			t.Fatalf("Scores(%s): %v", id, err)
		}
		if cond(sc) {
			return sc
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never held; last scores %+v", sc)
		}
		time.Sleep(time.Millisecond)
	}
}

func ndjsonDoc(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range evs {
		line, err := MarshalNDJSON(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

// TestTableStreamingMatchesOffline streams a binary trace through the
// full table path (chunked ingest, worker apply, close) and requires the
// final scores to equal offline Replay — the tentpole determinism
// contract at the table layer.
func TestTableStreamingMatchesOffline(t *testing.T) {
	raw := serialize(t, genEvents(3, 4000))
	spec := allKindsSpec()

	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}

	tbl := newTestTable(t, TableConfig{Shards: 4})
	id, _, _, err := tbl.Open(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += 100 {
		end := off + 100
		if end > len(raw) {
			end = len(raw)
		}
		if _, _, err := tbl.Ingest(id, FormatBinary, raw[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	final, err := tbl.Close(id, CloseClient)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final, offline) {
		t.Fatalf("table-streamed scores diverge from offline replay:\n table   %+v\n offline %+v", final, offline)
	}
}

// TestTableBackpressureLossless forces rejections against a backed-up
// queue (white-box: the queue depth is pinned so the test is
// deterministic), confirms rejected chunks carry *BackpressureError
// with a retry hint and roll the decoder back, then retries the
// identical bytes and requires the final scores to match an
// unthrottled replay — acknowledged events are never lost, rejected
// ones never half-consumed.
func TestTableBackpressureLossless(t *testing.T) {
	raw := serialize(t, genEvents(5, 2000))
	spec := Spec{}

	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}

	tbl := newTestTable(t, TableConfig{Shards: 1, MaxQueuedEvents: 64, RetryAfter: time.Millisecond})
	id, _, _, err := tbl.Open(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	sh := tbl.shardFor(id)

	// pin/unpin simulate a worker that has not drained yet: with a
	// nonzero queue depth at the cap, any further chunk must bounce.
	pin := func() {
		sh.mu.Lock()
		sh.sessions[id].nqueued = tbl.maxQueued
		sh.mu.Unlock()
	}
	unpin := func() {
		sh.mu.Lock()
		sh.sessions[id].nqueued = 0
		sh.mu.Unlock()
	}

	rejections := 0
	const chunkSize = 997 // odd size: chunks split records mid-byte
	for off := 0; off < len(raw); {
		end := off + chunkSize
		if end > len(raw) {
			end = len(raw)
		}
		if rejections < 5 { // bounce every chunk attempt a few times first
			pin()
			_, _, err := tbl.Ingest(id, FormatBinary, raw[off:end])
			unpin()
			var bp *BackpressureError
			if !errors.As(err, &bp) {
				t.Fatalf("full queue accepted a chunk: %v", err)
			}
			if bp.RetryAfter <= 0 || bp.Limit != tbl.maxQueued {
				t.Fatalf("backpressure error malformed: %+v", bp)
			}
			rejections++
			continue // retry the identical bytes
		}
		_, _, err := tbl.Ingest(id, FormatBinary, raw[off:end])
		var bp *BackpressureError
		if errors.As(err, &bp) { // organic congestion: worker hasn't drained yet
			rejections++
			time.Sleep(bp.RetryAfter)
			continue // retry the identical bytes
		}
		if err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if rejections < 5 {
		t.Fatalf("only %d rejections exercised", rejections)
	}
	final, err := tbl.Close(id, CloseClient)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final, offline) {
		t.Fatalf("throttled stream diverged from offline replay:\n table   %+v\n offline %+v", final, offline)
	}
}

func TestTableCapsAndNotFound(t *testing.T) {
	tbl := newTestTable(t, TableConfig{MaxSessions: 2})
	a, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Open(Spec{}, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Open(Spec{}, ""); !errors.Is(err, ErrTableFull) {
		t.Fatalf("third open = %v, want ErrTableFull", err)
	}
	if _, err := tbl.Close(a, CloseClient); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Open(Spec{}, ""); err != nil {
		t.Fatalf("open after close = %v, want free slot", err)
	}
	if _, _, err := tbl.Ingest("s-nope-000001", FormatBinary, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ingest unknown = %v", err)
	}
	if _, err := tbl.Scores("s-nope-000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("scores unknown = %v", err)
	}
	var gone *GoneError
	if _, err := tbl.Close(a, CloseClient); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("double close = %v, want *GoneError(client)", err)
	}
}

func TestTableFormatLock(t *testing.T) {
	tbl := newTestTable(t, TableConfig{})
	id, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	doc := ndjsonDoc(t, []trace.Event{{Kind: trace.EvCycle, PC: 64}})
	if _, _, err := tbl.Ingest(id, FormatNDJSON, doc); err != nil {
		t.Fatal(err)
	}
	_, _, err = tbl.Ingest(id, FormatBinary, []byte{1, 2, 3})
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Have != FormatNDJSON || fe.Got != FormatBinary {
		t.Fatalf("format switch = %v, want *FormatError(ndjson, binary)", err)
	}
}

// TestTableEviction drives the TTL sweep off a fake clock: an idle
// session evicts, an ingesting session's clock renews, and eviction
// applies queued events before closing.
func TestTableEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tbl := newTestTable(t, TableConfig{
		IdleTTL:       time.Minute,
		SweepInterval: time.Millisecond,
		Now:           clock.now,
	})
	idle, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	busy, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	doc := ndjsonDoc(t, []trace.Event{{Kind: trace.EvCycle, PC: 64}})

	// Renew the busy session every simulated 30s while the idle one
	// goes quiet for two TTLs.
	for i := 0; i < 4; i++ {
		clock.advance(30 * time.Second)
		if _, _, err := tbl.Ingest(busy, FormatNDJSON, doc); err != nil {
			t.Fatalf("renewing ingest at step %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond) // let the sweeper see this instant
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := tbl.Scores(idle)
		var gone *GoneError
		if errors.As(err, &gone) && gone.Reason != CloseEvicted {
			t.Fatalf("idle session gone with reason %q, want %q", gone.Reason, CloseEvicted)
		}
		// GoneError while the tombstone lives, ErrNotFound once a later
		// sweep (the clock advanced a further TTL above) purges it.
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := tbl.Scores(busy); err != nil {
		t.Fatalf("busy session evicted despite ingest renewals: %v", err)
	}
}

// TestTableSweepVsTouch pins the sweep-vs-touch ordering fix with a
// fully deterministic interleaving: a session listed as an eviction
// candidate and then touched before the sweep claims it must survive
// that sweep — under the old one-shot Expired sweep the listing itself
// removed the tracker entry, so the renewal was lost and the session
// evicted anyway.
func TestTableSweepVsTouch(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tbl := newTestTable(t, TableConfig{
		IdleTTL:       time.Minute,
		SweepInterval: time.Hour, // only the manual sweeps below run
		Now:           clock.now,
	})
	touched, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	idle, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 of the sweep: both sessions are a TTL idle, so both are
	// candidates. The client's poll lands between the phases.
	clock.advance(time.Minute)
	now := clock.now()
	cands := tbl.tracker.Candidates(now)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want both sessions", cands)
	}
	if _, err := tbl.Scores(touched); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the claim must lose to the touch and take only the idle
	// session.
	tbl.evictExpired(cands, now)
	if _, err := tbl.Scores(touched); err != nil {
		t.Fatalf("session touched mid-sweep was evicted: %v", err)
	}
	var gone *GoneError
	if _, err := tbl.Scores(idle); !errors.As(err, &gone) || gone.Reason != CloseEvicted {
		t.Fatalf("idle session = %v, want *GoneError(evicted)", err)
	}

	// The renewal bought a full TTL, not forever.
	clock.advance(time.Minute)
	tbl.sweepOnce(clock.now())
	if _, err := tbl.Scores(touched); !errors.As(err, &gone) || gone.Reason != CloseEvicted {
		t.Fatalf("renewed session after a further TTL = %v, want *GoneError(evicted)", err)
	}
}

// TestTableTombstoneGone pins the closed-session error contract: every
// operation on a closed (but remembered) session reports *GoneError
// with the close reason, and the tombstone ages out after one TTL, after
// which the ID is indistinguishable from one the table never issued.
func TestTableTombstoneGone(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tbl := newTestTable(t, TableConfig{
		IdleTTL:       time.Minute,
		SweepInterval: time.Hour,
		Now:           clock.now,
	})
	id, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Close(id, CloseClient); err != nil {
		t.Fatal(err)
	}

	var gone *GoneError
	if _, _, err := tbl.Ingest(id, FormatNDJSON, nil); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("ingest after close = %v, want *GoneError(client)", err)
	}
	if _, err := tbl.Scores(id); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("scores after close = %v, want *GoneError(client)", err)
	}
	if _, _, err := tbl.Subscribe(id); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("subscribe after close = %v, want *GoneError(client)", err)
	}
	if _, err := tbl.Close(id, CloseClient); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("double close = %v, want *GoneError(client)", err)
	}

	// One TTL later the tombstone purges and the ID is simply unknown.
	clock.advance(time.Minute)
	tbl.sweepOnce(clock.now())
	if _, err := tbl.Scores(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("scores after tombstone purge = %v, want ErrNotFound", err)
	}
}

// TestTableSubscribe covers the live-score channel: a prime snapshot,
// an update after ingest, the final snapshot and close on session close,
// and early cancel racing close.
func TestTableSubscribe(t *testing.T) {
	tbl := newTestTable(t, TableConfig{})
	id, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := tbl.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if sc := <-ch; sc.Events != 0 || sc.Final {
		t.Fatalf("prime snapshot = %+v", sc)
	}
	doc := ndjsonDoc(t, []trace.Event{
		{Kind: trace.EvFetch, Tag: 1, PC: 0x40, MDC: 2, Flags: 1},
		{Kind: trace.EvResolve, Tag: 1},
	})
	if _, _, err := tbl.Ingest(id, FormatNDJSON, doc); err != nil {
		t.Fatal(err)
	}
	var last Scores
	for sc := range ch {
		last = sc
		if sc.Final {
			break
		}
		if sc.Events == 2 {
			// Updates observed; now close and expect the final snapshot.
			go tbl.Close(id, CloseClient)
		}
	}
	if !last.Final || last.Events != 2 {
		t.Fatalf("final snapshot = %+v", last)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after final snapshot")
	}

	// cancel-after-close must not double-close (exercised by the
	// deferred cancel); subscribe on a gone session reports the close.
	var gone *GoneError
	if _, _, err := tbl.Subscribe(id); !errors.As(err, &gone) || gone.Reason != CloseClient {
		t.Fatalf("subscribe after close = %v, want *GoneError(client)", err)
	}
}

// TestTableConcurrentChaos hammers one table from many goroutines —
// opens, chunked ingests, score reads, subscribes, closes, evictions all
// racing — and then checks conservation: every session opened is
// eventually closed exactly once, and no queued events survive
// shutdown. Run under -race this is the expiry/renew/close race test
// the issue asks for.
func TestTableConcurrentChaos(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tbl := NewTable(TableConfig{
		Shards:          4,
		MaxSessions:     64,
		MaxQueuedEvents: 256,
		IdleTTL:         50 * time.Millisecond,
		SweepInterval:   5 * time.Millisecond,
		RetryAfter:      time.Millisecond,
		Now:             clock.now,
	})
	raw := serialize(t, genEvents(9, 600))
	var opened, closedByUs atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				clock.advance(time.Millisecond) // drifts everyone toward eviction
				id, _, _, err := tbl.Open(Spec{}, "")
				if errors.Is(err, ErrTableFull) {
					continue
				}
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				opened.Add(1)
				if g%3 == 0 {
					if _, cancel, err := tbl.Subscribe(id); err == nil {
						defer cancel()
					}
				}
				evicted := false
				for off := 0; off < len(raw) && !evicted; {
					end := off + 512
					if end > len(raw) {
						end = len(raw)
					}
					_, _, err := tbl.Ingest(id, FormatBinary, raw[off:end])
					var bp *BackpressureError
					var gone *GoneError
					switch {
					case errors.As(err, &bp):
						time.Sleep(bp.RetryAfter) // retry the same bytes
					case errors.As(err, &gone), errors.Is(err, ErrNotFound):
						evicted = true // a racing sweep took the session
					case err != nil:
						t.Errorf("ingest: %v", err)
						return
					default:
						off = end
						tbl.Scores(id)
					}
				}
				// Half the sessions close explicitly; the rest idle out
				// under the advancing clock and the sweeper takes them.
				if i%2 == 0 {
					if _, err := tbl.Close(id, CloseClient); err == nil {
						closedByUs.Add(1)
					}
				} else {
					clock.advance(time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
	tbl.Shutdown()

	if tbl.Len() != 0 {
		t.Fatalf("sessions leaked past shutdown: %d", tbl.Len())
	}
	if tbl.QueuedEvents() != 0 {
		t.Fatalf("queued events leaked past shutdown: %d", tbl.QueuedEvents())
	}
	if opened.Load() == 0 || closedByUs.Load() == 0 {
		t.Fatalf("chaos degenerated: opened=%d closed=%d", opened.Load(), closedByUs.Load())
	}
}

// TestTableShutdownDrains proves queued-but-unapplied events still reach
// the estimators when the table shuts down mid-stream.
func TestTableShutdownDrains(t *testing.T) {
	raw := serialize(t, genEvents(13, 1000))
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(r, Spec{})
	if err != nil {
		t.Fatal(err)
	}

	tbl := NewTable(TableConfig{Shards: 2})
	id, _, _, err := tbl.Open(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.Ingest(id, FormatBinary, raw); err != nil {
		t.Fatal(err)
	}
	ch, _, err := tbl.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Shutdown()

	var final Scores
	for sc := range ch {
		final = sc
	}
	if !final.Final {
		t.Fatalf("subscriber never saw the final snapshot: %+v", final)
	}
	if !reflect.DeepEqual(final, offline) {
		t.Fatalf("shutdown-drained scores diverge from offline replay:\n table   %+v\n offline %+v", final, offline)
	}
	if _, _, _, err := tbl.Open(Spec{}, ""); !errors.Is(err, ErrShutdown) {
		t.Fatalf("open after shutdown = %v", err)
	}
}
