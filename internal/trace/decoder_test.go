package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

// buildStream serializes a fixed event sequence (v2 header with a marked
// provenance) and returns the raw bytes plus the events written.
func buildStream(t *testing.T) ([]byte, []Event, [provenanceSize]byte) {
	t.Helper()
	var prov [provenanceSize]byte
	for i := range prov {
		prov[i] = byte(i * 3)
	}
	events := []Event{
		{Kind: EvCycle, PC: 64},
		{Kind: EvFetch, Tag: 1, PC: 0x4000, History: 0xbeef, MDC: 3, Flags: 1},
		{Kind: EvFetch, Tag: 2, PC: 0x4010, History: 0xcafe, MDC: 1, Flags: 1},
		{Kind: EvResolve, Tag: 1},
		{Kind: EvSquash, Tag: 2},
		{Kind: EvRetire, PC: 0x4000, History: 0xbeef, MDC: 3, Flags: 3},
		{Kind: EvCycle, PC: 128},
	}
	var buf bytes.Buffer
	w, err := NewWriterProvenance(&buf, prov)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), events, prov
}

// feedChunked pushes raw through a fresh decoder in chunks of size n and
// returns the emitted events.
func feedChunked(t *testing.T, raw []byte, n int) (*Decoder, []Event) {
	t.Helper()
	var d Decoder
	var got []Event
	for off := 0; off < len(raw); off += n {
		end := off + n
		if end > len(raw) {
			end = len(raw)
		}
		if err := d.Feed(raw[off:end], func(ev Event) error {
			got = append(got, ev)
			return nil
		}); err != nil {
			t.Fatalf("chunk size %d at offset %d: %v", n, off, err)
		}
	}
	return &d, got
}

// TestDecoderMatchesReaderAtAnyChunking is the core property: however the
// stream is split — byte-at-a-time, across the header, across records —
// the decoder emits exactly what the pull Reader yields.
func TestDecoderMatchesReaderAtAnyChunking(t *testing.T) {
	raw, want, prov := buildStream(t)

	// Reference: the pull reader.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ref []Event
	for {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, ev)
	}
	if !reflect.DeepEqual(ref, want) {
		t.Fatalf("reader round-trip mismatch:\n got %v\nwant %v", ref, want)
	}

	for _, n := range []int{1, 2, 3, 7, 8, 22, 23, 24, 39, 40, 41, 64, len(raw)} {
		d, got := feedChunked(t, raw, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk size %d: events mismatch:\n got %v\nwant %v", n, got, want)
		}
		if !d.HeaderDone() || d.Version() != Version || d.Provenance() != prov {
			t.Fatalf("chunk size %d: header not recovered (done=%v v=%d)", n, d.HeaderDone(), d.Version())
		}
		if d.Buffered() != 0 {
			t.Fatalf("chunk size %d: %d bytes left buffered after a whole stream", n, d.Buffered())
		}
	}
}

// TestDecoderV1Header proves version-1 streams (no provenance) decode,
// including split mid-header.
func TestDecoderV1Header(t *testing.T) {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	buf.Write(hdr[:])
	var rec [recordSize]byte
	rec[0] = byte(EvCycle)
	binary.LittleEndian.PutUint64(rec[9:], 640)
	buf.Write(rec[:])

	_, got := feedChunked(t, buf.Bytes(), 5)
	want := []Event{{Kind: EvCycle, PC: 640}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode = %v, want %v", got, want)
	}
}

func TestDecoderRejectsBadStreams(t *testing.T) {
	var d Decoder
	if err := d.Feed([]byte("notatrace"), nil); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("bad magic: err = %v, want ErrBadHeader", err)
	}

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], 99)
	d = Decoder{}
	if err := d.Feed(hdr[:], nil); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("future version: err = %v, want ErrBadHeader", err)
	}

	raw, _, _ := buildStream(t)
	bad := append([]byte(nil), raw...)
	bad[len(raw)-recordSize] = 200 // corrupt the last record's kind
	d = Decoder{}
	err := d.Feed(bad, func(Event) error { return nil })
	if err == nil {
		t.Fatal("unknown kind not rejected")
	}
}

// TestDecoderSnapshotRestore is the backpressure contract: after a
// rejected chunk the decoder rewinds, and retrying the identical bytes
// emits the identical events.
func TestDecoderSnapshotRestore(t *testing.T) {
	raw, want, _ := buildStream(t)

	// Feed an awkward prefix so the snapshot holds a partial record.
	split := 8 + provenanceSize + recordSize + 5
	var d Decoder
	var got []Event
	collect := func(ev Event) error { got = append(got, ev); return nil }
	if err := d.Feed(raw[:split], collect); err != nil {
		t.Fatal(err)
	}

	snap := d.Snapshot()
	before := len(got)

	// First attempt: decode the rest, then pretend the enqueue was
	// rejected — roll back both the decoder and the collected events.
	if err := d.Feed(raw[split:], collect); err != nil {
		t.Fatal(err)
	}
	firstTry := append([]Event(nil), got[before:]...)
	got = got[:before]
	d.Restore(snap)

	// Retry with the same bytes must produce the same events.
	if err := d.Feed(raw[split:], collect); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[before:], firstTry) {
		t.Fatalf("retry after Restore diverged:\n got %v\nwant %v", got[before:], firstTry)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final events mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestDecoderEmitErrorStopsFeed confirms an emit error propagates and
// consumes nothing conceptually — callers Restore a snapshot to retry.
func TestDecoderEmitErrorStopsFeed(t *testing.T) {
	raw, want, _ := buildStream(t)
	sentinel := errors.New("queue full")

	var d Decoder
	snap := d.Snapshot()
	calls := 0
	err := d.Feed(raw, func(Event) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("emit error not propagated: %v", err)
	}

	d.Restore(snap)
	var got []Event
	if err := d.Feed(raw, func(ev Event) error { got = append(got, ev); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restore decode mismatch:\n got %v\nwant %v", got, want)
	}
}
