// Package trace records and replays branch-event traces, decoupling path
// confidence research from the bundled simulator: capture the branch
// lifecycle of any run to a compact binary stream, then replay it against
// any set of estimators offline (and deterministically) without paying the
// cycle-level simulation cost again.
//
// The format is a little-endian stream of fixed-size records behind a
// small header; encoding/binary only, no external dependencies.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"paco/internal/core"
)

// Magic identifies a trace stream; Version is bumped on format changes.
//
// Version history:
//
//	1: magic + version, fixed-size records.
//	2: adds a 32-byte provenance hash to the header — the canonical
//	   content hash of the scenario that generated the traced workload
//	   (zero when the trace was not scenario-driven). Readers accept
//	   both versions.
const (
	Magic   = 0x5061436f // "PaCo"
	Version = 2
)

// provenanceSize is the provenance hash length in version >= 2 headers.
const provenanceSize = 32

// EventKind tags one record.
type EventKind uint8

// Event kinds mirror the estimator lifecycle, plus a cycle marker.
const (
	EvFetch EventKind = iota + 1
	EvResolve
	EvSquash
	EvRetire
	EvCycle
)

// Event is one trace record.
//
// Fetch events carry the full BranchEvent plus a Tag identifying the
// dynamic branch; Resolve/Squash reference the Tag; Retire carries the
// event and correctness; Cycle advances simulated time (PC holds the
// cycle number).
type Event struct {
	Kind    EventKind
	Tag     uint64
	PC      uint64
	History uint32
	MDC     uint8
	Flags   uint8 // bit0: conditional, bit1: correct (retire)
}

const recordSize = 1 + 8 + 8 + 4 + 1 + 1

// Writer serializes events.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes a header with zero provenance and returns a trace
// writer.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterProvenance(w, [provenanceSize]byte{})
}

// NewWriterProvenance writes a header stamped with the given provenance
// hash (the canonical scenario hash of the traced workload) and returns
// a trace writer.
func NewWriterProvenance(w io.Writer, provenance [provenanceSize]byte) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8 + provenanceSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	copy(hdr[8:], provenance[:])
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (tw *Writer) Write(ev Event) error {
	b := tw.buf[:]
	b[0] = byte(ev.Kind)
	binary.LittleEndian.PutUint64(b[1:], ev.Tag)
	binary.LittleEndian.PutUint64(b[9:], ev.PC)
	binary.LittleEndian.PutUint32(b[17:], ev.History)
	b[21] = ev.MDC
	b[22] = ev.Flags
	_, err := tw.w.Write(b)
	tw.n++
	return err
}

// Events returns how many events have been written.
func (tw *Writer) Events() uint64 { return tw.n }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader deserializes events.
type Reader struct {
	r          *bufio.Reader
	buf        [recordSize]byte
	version    uint32
	provenance [provenanceSize]byte
}

// ErrBadHeader reports a stream that is not a PaCo trace.
var ErrBadHeader = errors.New("trace: bad header")

// NewReader validates the header and returns a trace reader. Version 1
// streams (no provenance) remain readable.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadHeader
	}
	tr := &Reader{r: br, version: binary.LittleEndian.Uint32(hdr[4:])}
	switch tr.version {
	case 1:
		// No provenance field.
	case 2:
		if _, err := io.ReadFull(br, tr.provenance[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated provenance: %v", ErrBadHeader, err)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, tr.version)
	}
	return tr, nil
}

// FormatVersion returns the stream's header version.
func (tr *Reader) FormatVersion() uint32 { return tr.version }

// Provenance returns the header's canonical scenario hash; the zero
// value means the trace was not scenario-driven (or is version 1).
func (tr *Reader) Provenance() [provenanceSize]byte { return tr.provenance }

// Read returns the next event, or io.EOF at end of stream.
func (tr *Reader) Read() (Event, error) {
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Event{}, err
	}
	return parseRecord(tr.buf[:])
}

// parseRecord decodes one fixed-size record from b (which must hold at
// least recordSize bytes) — shared by Reader.Read and Decoder.Feed so
// the pull and push paths cannot drift.
func parseRecord(b []byte) (Event, error) {
	ev := Event{
		Kind:    EventKind(b[0]),
		Tag:     binary.LittleEndian.Uint64(b[1:]),
		PC:      binary.LittleEndian.Uint64(b[9:]),
		History: binary.LittleEndian.Uint32(b[17:]),
		MDC:     b[21],
		Flags:   b[22],
	}
	if ev.Kind < EvFetch || ev.Kind > EvCycle {
		return Event{}, fmt.Errorf("trace: unknown event kind %d", ev.Kind)
	}
	return ev, nil
}

// Branch converts a record to the estimator-facing event.
func (ev Event) Branch() core.BranchEvent {
	return core.BranchEvent{
		PC:          ev.PC,
		History:     ev.History,
		MDC:         uint32(ev.MDC),
		Conditional: ev.Flags&1 != 0,
	}
}

// Conditional reports the record's conditional-branch bit.
func (ev Event) Conditional() bool { return ev.Flags&1 != 0 }

// Correct reports a retire record's prediction-correct bit.
func (ev Event) Correct() bool { return ev.Flags&2 != 0 }

// Recorder adapts an estimator-shaped sink into trace records: install it
// as an extra estimator on a simulated thread and every lifecycle event is
// captured. Contribution tokens carry the tag.
type Recorder struct {
	w       *Writer
	nextTag uint64
	err     error
}

// NewRecorder wraps a Writer as an Estimator.
func NewRecorder(w *Writer) *Recorder { return &Recorder{w: w} }

// Err returns the first write error, if any (the Estimator interface has
// no error returns; check after the run).
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) record(ev Event) {
	if r.err == nil {
		r.err = r.w.Write(ev)
	}
}

// BranchFetched implements core.Estimator.
func (r *Recorder) BranchFetched(ev core.BranchEvent) core.Contribution {
	tag := r.nextTag
	r.nextTag++
	flags := uint8(0)
	if ev.Conditional {
		flags |= 1
	}
	r.record(Event{Kind: EvFetch, Tag: tag, PC: ev.PC, History: ev.History, MDC: uint8(ev.MDC), Flags: flags})
	// Smuggle the tag through the contribution token.
	return core.Contribution{Encoded: uint32(tag), Tracked: true, LowConf: ev.Conditional}
}

// BranchResolved implements core.Estimator.
func (r *Recorder) BranchResolved(c core.Contribution) {
	if c.Tracked {
		r.record(Event{Kind: EvResolve, Tag: uint64(c.Encoded)})
	}
}

// BranchSquashed implements core.Estimator.
func (r *Recorder) BranchSquashed(c core.Contribution) {
	if c.Tracked {
		r.record(Event{Kind: EvSquash, Tag: uint64(c.Encoded)})
	}
}

// BranchRetired implements core.Estimator.
func (r *Recorder) BranchRetired(ev core.BranchEvent, correct bool) {
	flags := uint8(0)
	if ev.Conditional {
		flags |= 1
	}
	if correct {
		flags |= 2
	}
	r.record(Event{Kind: EvRetire, PC: ev.PC, History: ev.History, MDC: uint8(ev.MDC), Flags: flags})
}

// Tick implements core.Estimator: cycle markers let replay drive periodic
// work at the original cadence. Only every 64th cycle is recorded to keep
// traces compact, so replay reproduces live estimator state exactly when
// periodic work (e.g. PaCo's RefreshPeriod) is a multiple of 64 cycles;
// otherwise refresh points may shift by up to 63 cycles.
func (r *Recorder) Tick(cycle uint64) {
	if cycle%64 == 0 {
		r.record(Event{Kind: EvCycle, PC: cycle})
	}
}

// Reset implements core.Estimator.
func (r *Recorder) Reset() { r.nextTag = 0 }

var _ core.Estimator = (*Recorder)(nil)

// ReplayStats summarizes a replay.
type ReplayStats struct {
	Fetches, Resolves, Squashes, Retires uint64
	Cycles                               uint64
}

// Replay drives a set of estimators from a trace. Dangling in-flight
// branches at end of trace are squashed so estimator sums drain.
func Replay(r *Reader, ests []core.Estimator) (ReplayStats, error) {
	var st ReplayStats
	type slot struct {
		contribs []core.Contribution
	}
	inflight := map[uint64]slot{}
	for {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return st, err
		}
		switch ev.Kind {
		case EvFetch:
			st.Fetches++
			be := ev.Branch()
			s := slot{contribs: make([]core.Contribution, len(ests))}
			for i, e := range ests {
				s.contribs[i] = e.BranchFetched(be)
			}
			inflight[ev.Tag] = s
		case EvResolve, EvSquash:
			s, ok := inflight[ev.Tag]
			if !ok {
				return st, fmt.Errorf("trace: tag %d resolved without fetch", ev.Tag)
			}
			delete(inflight, ev.Tag)
			for i, e := range ests {
				if ev.Kind == EvResolve {
					e.BranchResolved(s.contribs[i])

				} else {
					e.BranchSquashed(s.contribs[i])
				}
			}
			if ev.Kind == EvResolve {
				st.Resolves++
			} else {
				st.Squashes++
			}
		case EvRetire:
			st.Retires++
			be := ev.Branch()
			for _, e := range ests {
				e.BranchRetired(be, ev.Correct())
			}
		case EvCycle:
			st.Cycles = ev.PC
			for _, e := range ests {
				e.Tick(ev.PC)
			}
		}
	}
	for _, s := range inflight {
		for i, e := range ests {
			e.BranchSquashed(s.contribs[i])
		}
	}
	return st, nil
}
