package trace

import (
	"encoding/binary"
	"fmt"
)

// Decoder is the incremental, push-driven counterpart of Reader: feed it
// arbitrary byte chunks of a v1/v2 trace stream — split anywhere,
// including mid-header or mid-record — and it emits complete events as
// they become decodable. This is the ingest path for streaming sessions,
// where a recorded trace arrives as HTTP request bodies chunked at
// whatever boundaries the client chose, so a `paco-trace record` file
// pipes straight into a live session.
//
// The decoder buffers at most one incomplete header or record (< 64
// bytes), never whole streams. State is snapshottable: an ingest path
// that must reject a chunk (backpressure) captures a Snapshot first and
// Restores it on rejection, so the client can retry the identical bytes
// and decoding resumes exactly where it left off.
type Decoder struct {
	headerDone bool
	version    uint32
	provenance [provenanceSize]byte
	rem        []byte // unconsumed tail: partial header or partial record
}

// DecoderState is an opaque copy of a Decoder's position in the stream,
// captured by Snapshot and reinstated by Restore.
type DecoderState struct {
	headerDone bool
	version    uint32
	provenance [provenanceSize]byte
	rem        []byte
}

// Snapshot captures the decoder's current state. The copy is deep — the
// decoder buffers less than a record's worth of bytes, so this is cheap.
func (d *Decoder) Snapshot() DecoderState {
	s := DecoderState{headerDone: d.headerDone, version: d.version, provenance: d.provenance}
	if len(d.rem) > 0 {
		s.rem = append([]byte(nil), d.rem...)
	}
	return s
}

// Restore rewinds the decoder to a previously captured state, discarding
// everything fed since. Feeding the same bytes again re-emits the same
// events.
func (d *Decoder) Restore(s DecoderState) {
	d.headerDone = s.headerDone
	d.version = s.version
	d.provenance = s.provenance
	d.rem = append(d.rem[:0], s.rem...)
}

// HeaderDone reports whether the stream header has been fully parsed,
// after which Version and Provenance are meaningful.
func (d *Decoder) HeaderDone() bool { return d.headerDone }

// Version returns the stream's header version (0 until HeaderDone).
func (d *Decoder) Version() uint32 { return d.version }

// Provenance returns the v2 header's canonical scenario hash (zero for
// v1 streams, non-scenario traces, or before HeaderDone).
func (d *Decoder) Provenance() [provenanceSize]byte { return d.provenance }

// Buffered reports how many undecoded bytes the decoder is holding —
// always less than a header or record.
func (d *Decoder) Buffered() int { return len(d.rem) }

// Feed consumes one chunk, calling emit for every event completed by its
// bytes. A decode error (bad magic, unsupported version, unknown event
// kind) or an error returned by emit stops the feed and is returned;
// decode errors are terminal for the stream, and callers who need to
// retry after an emit error should Restore a pre-Feed Snapshot rather
// than re-feeding into half-consumed state.
func (d *Decoder) Feed(chunk []byte, emit func(Event) error) error {
	data := chunk
	if len(d.rem) > 0 {
		d.rem = append(d.rem, chunk...)
		data = d.rem
	}

	if !d.headerDone {
		n, err := d.parseHeader(data)
		if err != nil {
			return err
		}
		if n == 0 { // incomplete header
			d.stash(data)
			return nil
		}
		data = data[n:]
	}

	for len(data) >= recordSize {
		ev, err := parseRecord(data)
		if err != nil {
			return err
		}
		if err := emit(ev); err != nil {
			return err
		}
		data = data[recordSize:]
	}
	d.stash(data)
	return nil
}

// parseHeader attempts to parse the stream header from data, returning
// the bytes consumed (0 when data is too short to decide).
func (d *Decoder) parseHeader(data []byte) (int, error) {
	if len(data) < 8 {
		return 0, nil
	}
	if binary.LittleEndian.Uint32(data[0:]) != Magic {
		return 0, ErrBadHeader
	}
	version := binary.LittleEndian.Uint32(data[4:])
	need := 8
	switch version {
	case 1:
		// No provenance field.
	case 2:
		need += provenanceSize
	default:
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, version)
	}
	if len(data) < need {
		return 0, nil
	}
	d.version = version
	if version >= 2 {
		copy(d.provenance[:], data[8:need])
	}
	d.headerDone = true
	return need, nil
}

// stash retains the unconsumed tail across Feed calls. data may alias
// d.rem (append's copy handles the overlap) or the caller's chunk
// (copied, so the caller may reuse its buffer).
func (d *Decoder) stash(data []byte) {
	d.rem = append(d.rem[:0], data...)
}
