package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/workload"
)

func TestRoundTripRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Kind: EvFetch, Tag: 1, PC: 0x1000, History: 0xAB, MDC: 7, Flags: 1},
		{Kind: EvResolve, Tag: 1},
		{Kind: EvRetire, PC: 0x1000, History: 0xAB, MDC: 7, Flags: 3},
		{Kind: EvCycle, PC: 640},
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != uint64(len(events)) {
		t.Fatal("event count")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: EvFetch, Tag: 1, Flags: 1})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: EventKind(99)})
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := r.Read(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestRecordReplayEquivalence is the headline property: running PaCo live
// inside the simulator and replaying a recorded trace into a fresh PaCo
// must produce identical MRT state and identical final sums.
func TestRecordReplayEquivalence(t *testing.T) {
	spec := &workload.Spec{
		Name: "tracetest", Seed: 5, BlocksPerPhase: 150, AvgBlockLen: 5,
		LoadFrac: 0.2, StoreFrac: 0.1, DepGeoP: 0.3, WorkingSetKB: 64,
		Phases: []workload.Phase{{Instructions: 1 << 62,
			Mix: workload.BranchMix{Biased: 0.5, Loop: 0.2, Noisy: 0.3, NoisyEps: 0.1, LoopTripMin: 6, LoopTripMax: 12}}},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	live := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 6400})

	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddThread(spec, []core.Estimator{live, rec}); err != nil {
		t.Fatal(err)
	}
	c.Run(60_000, 0)
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	replayed := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 6400})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(r, []core.Estimator{replayed})
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetches == 0 || st.Retires == 0 {
		t.Fatalf("empty replay: %+v", st)
	}
	if st.Fetches != st.Resolves+st.Squashes {
		// Replay squashes dangling branches itself, so the event counts
		// may differ by the in-flight tail; tolerate only that.
		if st.Fetches < st.Resolves+st.Squashes {
			t.Fatalf("more resolutions than fetches: %+v", st)
		}
	}
	// MRT state must match exactly: same retires were seen.
	for mdc := uint32(0); mdc < 16; mdc++ {
		lc, lm := live.MRTCounts(mdc)
		rc, rm := replayed.MRTCounts(mdc)
		if lc != rc || lm != rm {
			t.Fatalf("MRT bucket %d diverged: live %d/%d vs replay %d/%d", mdc, lc, lm, rc, rm)
		}
	}
	if live.Table() != replayed.Table() {
		t.Fatal("encoded tables diverged between live and replay")
	}
}

func TestReplayDanglingSquashed(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := NewRecorder(w)
	// Fetch two branches, resolve none.
	rec.BranchFetched(core.BranchEvent{PC: 1, MDC: 0, Conditional: true})
	rec.BranchFetched(core.BranchEvent{PC: 2, MDC: 0, Conditional: true})
	w.Flush()
	p := core.NewPaCo(core.PaCoConfig{})
	r, _ := NewReader(&buf)
	if _, err := Replay(r, []core.Estimator{p}); err != nil {
		t.Fatal(err)
	}
	if p.EncodedSum() != 0 {
		t.Fatalf("dangling branches not drained: sum=%d", p.EncodedSum())
	}
}

func TestReplayRejectsOrphanResolve(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: EvResolve, Tag: 42})
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := Replay(r, nil); err == nil {
		t.Fatal("orphan resolve accepted")
	}
}
