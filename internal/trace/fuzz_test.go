package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestProvenanceRoundTrip(t *testing.T) {
	var prov [32]byte
	for i := range prov {
		prov[i] = byte(i + 1)
	}
	var buf bytes.Buffer
	w, err := NewWriterProvenance(&buf, prov)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Kind: EvCycle, PC: 64}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.FormatVersion() != Version {
		t.Fatalf("version = %d", r.FormatVersion())
	}
	if r.Provenance() != prov {
		t.Fatalf("provenance = %x", r.Provenance())
	}
	if ev, err := r.Read(); err != nil || ev.Kind != EvCycle {
		t.Fatalf("record after provenance header: %+v, %v", ev, err)
	}
}

// TestVersion1StillReadable: provenance-less version 1 streams decode
// unchanged.
func TestVersion1StillReadable(t *testing.T) {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	buf.Write(hdr[:])
	var rec [recordSize]byte
	rec[0] = byte(EvCycle)
	binary.LittleEndian.PutUint64(rec[9:], 128) // PC field
	buf.Write(rec[:])
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.FormatVersion() != 1 || r.Provenance() != [32]byte{} {
		t.Fatalf("v1 header misread: version %d provenance %x", r.FormatVersion(), r.Provenance())
	}
	ev, err := r.Read()
	if err != nil || ev.Kind != EvCycle || ev.PC != 128 {
		t.Fatalf("v1 record: %+v, %v", ev, err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedProvenanceRejected(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	data := append(hdr[:], 1, 2, 3) // 3 of 32 provenance bytes
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
}

// FuzzReader is the decoder's robustness fuzz target: whatever the
// bytes, the decoder must return an error — it must never panic, hang,
// or over-read. Replay of whatever decodes is exercised too, since its
// tag bookkeeping is part of the decode surface.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid stream, a version-1 stream, truncations, and
	// corruptions of each interesting field.
	valid := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(Event{Kind: EvFetch, Tag: 1, PC: 0x1000, History: 0xAB, MDC: 7, Flags: 1})
		w.Write(Event{Kind: EvCycle, PC: 64})
		w.Write(Event{Kind: EvResolve, Tag: 1})
		w.Write(Event{Kind: EvRetire, PC: 0x1000, History: 0xAB, MDC: 7, Flags: 3})
		w.Flush()
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated record
	f.Add(valid[:9])            // truncated provenance
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})

	corruptKind := append([]byte(nil), valid...)
	corruptKind[8+32] = 99 // first record's kind byte
	f.Add(corruptKind)

	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 77
	f.Add(badVersion)

	orphan := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(Event{Kind: EvResolve, Tag: 42})
		w.Flush()
		return buf.Bytes()
	}()
	f.Add(orphan)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := r.Read(); err != nil {
				break
			}
		}
		// Replay the same bytes through the full pipeline (fresh reader;
		// the first was consumed).
		if r2, err := NewReader(bytes.NewReader(data)); err == nil {
			_, _ = Replay(r2, nil)
		}
	})
}
