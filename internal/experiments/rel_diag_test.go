package experiments

import (
	"testing"
)

func TestDiagReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration diagnostic")
	}
	cfg := Quick()
	cfg.Instructions = 1_500_000
	cfg.Warmup = 400_000
	cfg.RefreshPeriod = 200_000
	t7, err := RunTable7(cfg, []string{"parser", "twolf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t7.Rows {
		t.Logf("%s RMS=%.4f", row.Benchmark, row.RMS)
		for _, p := range row.Reliability.Points() {
			if p.Count > 1000 {
				t.Logf("  pred=%3d obs=%6.1f n=%d", p.Predicted, p.Observed, p.Count)
			}
		}
	}
}
