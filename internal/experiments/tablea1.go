package experiments

import (
	"fmt"
	"io"

	"paco/internal/bitutil"
	"paco/internal/confidence"
	"paco/internal/core"
	"paco/internal/metrics"
)

func init() { register("tableA1", TableA1Report) }

// TableA1Row compares the Appendix A approaches to estimating a branch's
// correct-prediction probability on one benchmark.
type TableA1Row struct {
	Benchmark                           string
	DynamicMRT, StaticMRT, PerBranchMRT float64 // RMS errors
}

// TableA1 is the Appendix A study: dynamic (bucketed) MRT vs profile-
// driven Static MRT vs Per-branch MRT.
type TableA1 struct {
	Rows []TableA1Row
	Mean TableA1Row
}

// RunTableA1 runs the three estimator variants side by side on every
// benchmark. The Static MRT profile is gathered faithfully: a profiling
// pass measures each MDC bucket's mispredict rate, the encodings are
// frozen, and the measurement pass uses them unchanged.
func RunTableA1(cfg Config, benchmarks []string) (*TableA1, error) {
	if benchmarks == nil {
		benchmarks = allBenchmarks()
	}
	out := &TableA1{Mean: TableA1Row{Benchmark: "mean"}}
	for _, name := range benchmarks {
		// Profiling pass: bucket mispredict rates for the static table.
		prof, err := runOne(cfg, name, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		profile := profileFromStats(prof)

		dyn := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
		static := core.NewStaticMRT(&profile)
		perBr := core.NewPerBranchMRT(core.DefaultPerBranchEntries)
		rels := [3]*metrics.Reliability{{}, {}, {}}
		ests := []core.Probabilistic{dyn, static, perBr}
		_, err = runOne(cfg, name, []core.Estimator{dyn, static, perBr}, nil,
			func(_ int, onGood bool) {
				for i, e := range ests {
					rels[i].Add(e.GoodpathProb(), onGood)
				}
			})
		if err != nil {
			return nil, err
		}
		row := TableA1Row{
			Benchmark:    name,
			DynamicMRT:   rels[0].RMSError(),
			StaticMRT:    rels[1].RMSError(),
			PerBranchMRT: rels[2].RMSError(),
		}
		out.Rows = append(out.Rows, row)
		out.Mean.DynamicMRT += row.DynamicMRT / float64(len(benchmarks))
		out.Mean.StaticMRT += row.StaticMRT / float64(len(benchmarks))
		out.Mean.PerBranchMRT += row.PerBranchMRT / float64(len(benchmarks))
	}
	return out, nil
}

// profileFromStats converts a profiling run's bucket statistics into a
// frozen encoded-probability table; unobserved buckets fall back to the
// generic default profile.
func profileFromStats(r *runResult) [confidence.NumBuckets]uint32 {
	st := r.stats()
	profile := core.DefaultStaticProfile()
	for mdc := uint32(0); mdc < confidence.NumBuckets; mdc++ {
		c, m := st.BucketCorrect[mdc], st.BucketMispred[mdc]
		if c+m == 0 {
			continue
		}
		profile[mdc] = bitutil.ExactEncode(float64(c) / float64(c+m))
	}
	return profile
}

// Table renders the Appendix A comparison.
func (a *TableA1) Table() *metrics.Table {
	t := metrics.NewTable("Benchmark", "MRT", "Static MRT", "Per-branch MRT")
	for _, r := range a.Rows {
		t.Row(r.Benchmark, r.DynamicMRT, r.StaticMRT, r.PerBranchMRT)
	}
	t.Row(a.Mean.Benchmark, a.Mean.DynamicMRT, a.Mean.StaticMRT, a.Mean.PerBranchMRT)
	return t
}

// TableA1Report writes the Appendix A table.
func TableA1Report(cfg Config, w io.Writer) error {
	a, err := RunTableA1(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Appendix Table 1: RMS error of MRT variants")
	fmt.Fprintln(w, "(paper: dynamic bucketed MRT 0.0377 mean; Static MRT ~3x worse; Per-branch")
	fmt.Fprintln(w, " MRT much worse — long-run rates discard the recency the MDC encodes)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, a.Table().String())
	return err
}
