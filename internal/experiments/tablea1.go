package experiments

import (
	"fmt"
	"io"

	"paco/internal/bitutil"
	"paco/internal/campaign"
	"paco/internal/confidence"
	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/metrics"
)

func init() { register("tableA1", TableA1Report) }

// TableA1Row compares the Appendix A approaches to estimating a branch's
// correct-prediction probability on one benchmark.
type TableA1Row struct {
	Benchmark                           string
	DynamicMRT, StaticMRT, PerBranchMRT float64 // RMS errors
}

// TableA1 is the Appendix A study: dynamic (bucketed) MRT vs profile-
// driven Static MRT vs Per-branch MRT.
type TableA1 struct {
	Rows []TableA1Row
	Mean TableA1Row
}

// RunTableA1 runs the three estimator variants side by side on every
// benchmark. The Static MRT profile is gathered faithfully: a profiling
// pass measures each MDC bucket's mispredict rate, the encodings are
// frozen, and the measurement pass uses them unchanged.
func RunTableA1(cfg Config, benchmarks []string) (*TableA1, error) {
	if benchmarks == nil {
		benchmarks = allBenchmarks()
	}
	// Profiling wave: bucket mispredict rates for the static tables, one
	// job per benchmark.
	profJobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		profJobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, nil)
	}
	profResults, err := runJobs(cfg, profJobs)
	if err != nil {
		return nil, err
	}

	// Measurement wave: the three estimator variants side by side.
	rels := make([][3]*metrics.Reliability, len(benchmarks))
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		i := i
		profile := profileFromStats(profResults[i].Stats)
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
			profile := profile
			dyn := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
			static := core.NewStaticMRT(&profile)
			perBr := core.NewPerBranchMRT(core.DefaultPerBranchEntries)
			rel := [3]*metrics.Reliability{{}, {}, {}}
			rels[i] = rel
			return relHooks([]core.Estimator{dyn, static, perBr},
				[]core.Probabilistic{dyn, static, perBr}, rel[:])
		})
	}
	if _, err := runJobs(cfg, jobs); err != nil {
		return nil, err
	}

	out := &TableA1{Mean: TableA1Row{Benchmark: "mean"}}
	for i, name := range benchmarks {
		row := TableA1Row{
			Benchmark:    name,
			DynamicMRT:   rels[i][0].RMSError(),
			StaticMRT:    rels[i][1].RMSError(),
			PerBranchMRT: rels[i][2].RMSError(),
		}
		out.Rows = append(out.Rows, row)
		out.Mean.DynamicMRT += row.DynamicMRT / float64(len(benchmarks))
		out.Mean.StaticMRT += row.StaticMRT / float64(len(benchmarks))
		out.Mean.PerBranchMRT += row.PerBranchMRT / float64(len(benchmarks))
	}
	return out, nil
}

// profileFromStats converts a profiling run's bucket statistics into a
// frozen encoded-probability table; unobserved buckets fall back to the
// generic default profile.
func profileFromStats(st cpu.ThreadStats) [confidence.NumBuckets]uint32 {
	profile := core.DefaultStaticProfile()
	for mdc := uint32(0); mdc < confidence.NumBuckets; mdc++ {
		c, m := st.BucketCorrect[mdc], st.BucketMispred[mdc]
		if c+m == 0 {
			continue
		}
		profile[mdc] = bitutil.ExactEncode(float64(c) / float64(c+m))
	}
	return profile
}

// Table renders the Appendix A comparison.
func (a *TableA1) Table() *metrics.Table {
	t := metrics.NewTable("Benchmark", "MRT", "Static MRT", "Per-branch MRT")
	for _, r := range a.Rows {
		t.Row(r.Benchmark, r.DynamicMRT, r.StaticMRT, r.PerBranchMRT)
	}
	t.Row(a.Mean.Benchmark, a.Mean.DynamicMRT, a.Mean.StaticMRT, a.Mean.PerBranchMRT)
	return t
}

// TableA1Report writes the Appendix A table.
func TableA1Report(cfg Config, w io.Writer) error {
	a, err := RunTableA1(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Appendix Table 1: RMS error of MRT variants")
	fmt.Fprintln(w, "(paper: dynamic bucketed MRT 0.0377 mean; Static MRT ~3x worse; Per-branch")
	fmt.Fprintln(w, " MRT much worse — long-run rates discard the recency the MDC encodes)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, a.Table().String())
	return err
}
