package experiments

import (
	"context"

	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/metrics"
	"paco/internal/workload"
)

// Every experiment submits its per-benchmark measurement runs to the
// campaign engine (internal/campaign) instead of looping serially: the
// experiment builds one campaign.Job per (benchmark, configuration)
// cell, runJobs shards them across cfg.Workers goroutines, and the
// experiment aggregates the returned results in job order. Each
// simulation is deterministic given its spec seed and jobs share no
// state, so reports are byte-identical at any worker count.

// benchJob builds the standard single-thread measurement job: warmup
// (statistics discarded, predictors and caches trained), then the
// measured window with the setup's estimators, gate, and probes
// installed. setup may be nil.
func benchJob(cfg Config, name string, instructions, warmup uint64, setup campaign.Setup) campaign.Job {
	return campaign.Job{
		ID:           name,
		Benchmark:    name,
		Instructions: instructions,
		Warmup:       warmup,
		Machine:      cfg.Machine,
		Setup:        setup,
	}
}

// runJobs executes a campaign on cfg's worker pool — or hands it to
// cfg.Execute when an alternative executor (e.g. a servertest worker
// federation) is injected. Either way the results come back one per
// job, in job order, so reports cannot tell executors apart.
func runJobs(cfg Config, jobs []campaign.Job) ([]campaign.Result, error) {
	if cfg.Execute != nil {
		return cfg.Execute(context.Background(), cfg.Workers, jobs)
	}
	return campaign.Run(context.Background(), cfg.Workers, jobs)
}

// relHooks builds the accuracy-measurement hooks shared by Table 7, the
// Appendix A study, and the ablations: attach the estimators and, at
// every probe instance, record each probabilistic estimator's goodpath
// probability against the oracle in its paired reliability diagram.
// probs[i] pairs with rels[i]; probs must all appear in estimators.
func relHooks(estimators []core.Estimator, probs []core.Probabilistic, rels []*metrics.Reliability) campaign.Hooks {
	return campaign.Hooks{
		Estimators: estimators,
		Probe: func(_ int, onGood bool) {
			for i, e := range probs {
				rels[i].Add(e.GoodpathProb(), onGood)
			}
		},
	}
}

// benchmarkNames aliases the paper's benchmark list.
var benchmarkNames = workload.BenchmarkNames
