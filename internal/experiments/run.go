package experiments

import (
	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/workload"
)

// runResult bundles what one measured benchmark run produced.
type runResult struct {
	Core *cpu.Core
	TID  int
}

// runOne runs one benchmark on a fresh single-thread machine: warmup
// (statistics discarded, predictors and caches trained), then the measured
// window with the given probe installed. gate may be nil.
func runOne(cfg Config, name string, ests []core.Estimator,
	gate func() bool, probe func(tid int, goodpath bool)) (*runResult, error) {

	spec, err := workload.NewBenchmark(name)
	if err != nil {
		return nil, err
	}
	return runSpec(cfg, spec, cfg.Instructions, cfg.Warmup, ests, gate, probe)
}

// runSpec is runOne with an explicit spec and window sizes (the gating
// sweep uses smaller windows).
func runSpec(cfg Config, spec *workload.Spec, instructions, warmup uint64,
	ests []core.Estimator, gate func() bool, probe func(tid int, goodpath bool)) (*runResult, error) {

	c, err := cpu.New(cfg.machine())
	if err != nil {
		return nil, err
	}
	tid, err := c.AddThread(spec, ests)
	if err != nil {
		return nil, err
	}
	if gate != nil {
		c.SetGate(gate)
	}
	c.Run(warmup, 0)
	// The warmup stands in for the paper's multi-hundred-million
	// instruction fast-forward, during which PaCo's log circuit would
	// have run thousands of times; force one logarithmization at the
	// boundary so measurement never starts from the cold-start profile.
	for _, e := range ests {
		if p, ok := e.(*core.PaCo); ok {
			p.Refresh()
		}
	}
	c.ResetStats()
	if probe != nil {
		c.SetProbe(probe)
	}
	c.Run(instructions, 0)
	return &runResult{Core: c, TID: tid}, nil
}

// stats returns the measured thread's counters.
func (r *runResult) stats() cpu.ThreadStats { return r.Core.ThreadStats(r.TID) }

// ipc returns the measured thread's IPC.
func (r *runResult) ipc() float64 { return r.Core.IPC(r.TID) }

// benchmarkNames aliases the paper's benchmark list.
var benchmarkNames = workload.BenchmarkNames
