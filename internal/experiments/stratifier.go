package experiments

import (
	"fmt"
	"io"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/metrics"
	"paco/internal/workload"
)

func init() { register("ablate-perceptron", AblatePerceptronReport) }

// AblatePerceptron runs PaCo with two stratifiers — the paper's enhanced
// JRS MDC and a perceptron confidence bucket (Akkary et al.) — and
// compares RMS error per benchmark. The paper's Related Work predicts a
// better stratifier simply improves PaCo.
func AblatePerceptron(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "bzip2"}
	}
	t := metrics.NewTable("Benchmark", "JRS-stratified RMS", "perceptron-stratified RMS")
	for _, name := range benchmarks {
		jrsRMS, err := stratifiedRMS(cfg, name, false)
		if err != nil {
			return nil, err
		}
		perRMS, err := stratifiedRMS(cfg, name, true)
		if err != nil {
			return nil, err
		}
		t.Row(name, jrsRMS, perRMS)
	}
	return t, nil
}

func stratifiedRMS(cfg Config, name string, perceptron bool) (float64, error) {
	spec, err := workload.NewBenchmark(name)
	if err != nil {
		return 0, err
	}
	machine := cfg.machine()
	machine.PerceptronStratifier = perceptron
	c, err := cpu.New(machine)
	if err != nil {
		return 0, err
	}
	paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
	if _, err := c.AddThread(spec, []core.Estimator{paco}); err != nil {
		return 0, err
	}
	c.Run(cfg.Warmup, 0)
	paco.Refresh()
	c.ResetStats()
	rel := &metrics.Reliability{}
	c.SetProbe(func(_ int, onGood bool) { rel.Add(paco.GoodpathProb(), onGood) })
	c.Run(cfg.Instructions, 0)
	return rel.RMSError(), nil
}

// AblatePerceptronReport writes the stratifier comparison.
func AblatePerceptronReport(cfg Config, w io.Writer) error {
	t, err := AblatePerceptron(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: JRS-MDC vs perceptron-confidence stratifier")
	fmt.Fprintln(w, "(the paper treats the stratifier as pluggable; this swaps in Akkary-style")
	fmt.Fprintln(w, " perceptron confidence buckets without touching PaCo itself)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}
