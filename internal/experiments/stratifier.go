package experiments

import (
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/metrics"
)

func init() { register("ablate-perceptron", AblatePerceptronReport) }

// AblatePerceptron runs PaCo with two stratifiers — the paper's enhanced
// JRS MDC and a perceptron confidence bucket (Akkary et al.) — and
// compares RMS error per benchmark. The paper's Related Work predicts a
// better stratifier simply improves PaCo.
func AblatePerceptron(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "bzip2"}
	}
	// The grid is (benchmark x stratifier); each cell is one campaign
	// job with the machine's stratifier switched accordingly.
	rels := make([]*metrics.Reliability, 2*len(benchmarks))
	jobs := make([]campaign.Job, 0, 2*len(benchmarks))
	for i, name := range benchmarks {
		for v, perceptron := range []bool{false, true} {
			slot := 2*i + v
			machine := cfg.machine()
			machine.PerceptronStratifier = perceptron
			job := campaign.Job{
				ID:           fmt.Sprintf("%s/perceptron=%t", name, perceptron),
				Benchmark:    name,
				Instructions: cfg.Instructions,
				Warmup:       cfg.Warmup,
				Machine:      &machine,
				Setup: func() campaign.Hooks {
					paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
					rel := &metrics.Reliability{}
					rels[slot] = rel
					return relHooks([]core.Estimator{paco}, []core.Probabilistic{paco}, []*metrics.Reliability{rel})
				},
			}
			jobs = append(jobs, job)
		}
	}
	if _, err := runJobs(cfg, jobs); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Benchmark", "JRS-stratified RMS", "perceptron-stratified RMS")
	for i, name := range benchmarks {
		t.Row(name, rels[2*i].RMSError(), rels[2*i+1].RMSError())
	}
	return t, nil
}

// AblatePerceptronReport writes the stratifier comparison.
func AblatePerceptronReport(cfg Config, w io.Writer) error {
	t, err := AblatePerceptron(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: JRS-MDC vs perceptron-confidence stratifier")
	fmt.Fprintln(w, "(the paper treats the stratifier as pluggable; this swaps in Akkary-style")
	fmt.Fprintln(w, " perceptron confidence buckets without touching PaCo itself)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}
