package experiments

import (
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/gating"
	"paco/internal/metrics"
)

func init() { register("fig10", Figure10Report) }

// GatingPoint is one configuration's outcome averaged over benchmarks: the
// axes of the paper's Figure 10.
type GatingPoint struct {
	Config string
	// PerfLoss is the IPC loss versus no gating, in percent (negative
	// means gating *improved* performance — the pollution effect).
	PerfLoss float64
	// BadpathReduction is the reduction in badpath instructions executed,
	// in percent.
	BadpathReduction float64
	// FetchedBadReduction is the reduction in badpath instructions
	// fetched, in percent (the paper notes ~70% for PaCo at its headline
	// point).
	FetchedBadReduction float64
	// GatedCycleFrac is the fraction of cycles fetch was gated.
	GatedCycleFrac float64
}

// Figure10 holds one sweep series per predictor family.
type Figure10 struct {
	// Series maps "PaCo" and "JRS-thrN" to their sweep points, ordered
	// from least to most aggressive gating.
	Series map[string][]GatingPoint
	Order  []string
}

type gatingBaseline struct {
	ipc        float64
	execBad    float64
	fetchedBad float64
}

// RunFigure10 sweeps pipeline-gating configurations for the conventional
// predictors (each JRS threshold x each gate-count) and for PaCo (each
// target probability), averaging per-benchmark performance loss and
// badpath reduction against an ungated baseline.
func RunFigure10(cfg Config, benchmarks []string) (*Figure10, error) {
	if benchmarks == nil {
		benchmarks = allBenchmarks()
	}

	// Ungated baselines, one campaign job per benchmark.
	baseJobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		baseJobs[i] = benchJob(cfg, name, cfg.GatingInstructions, cfg.GatingWarmup, nil)
	}
	baseResults, err := runJobs(cfg, baseJobs)
	if err != nil {
		return nil, err
	}
	base := make([]gatingBaseline, len(benchmarks))
	for i := range benchmarks {
		r := baseResults[i]
		base[i] = gatingBaseline{
			ipc:        r.IPC,
			execBad:    float64(r.Stats.ExecutedBad),
			fetchedBad: float64(r.Stats.FetchedBad),
		}
	}

	// The sweep grid: every gate configuration, in series order.
	out := &Figure10{Series: map[string][]GatingPoint{}}
	type sweepCfg struct {
		label string
		mk    func() gating.Gate
	}
	var sweeps []sweepCfg
	for _, thr := range cfg.GateThresholds {
		name := fmt.Sprintf("JRS-thr%d", thr)
		out.Order = append(out.Order, name)
		// Sweep from conservative (high gate-count) to aggressive.
		for i := len(cfg.GateCounts) - 1; i >= 0; i-- {
			thr, gc := thr, cfg.GateCounts[i]
			sweeps = append(sweeps, sweepCfg{
				label: fmt.Sprintf("JRS-thr%d-gate%d", thr, gc),
				mk:    func() gating.Gate { return gating.NewCountGate(thr, gc) },
			})
		}
	}
	out.Order = append(out.Order, "PaCo")
	for _, p := range cfg.ProbTargets {
		p := p
		sweeps = append(sweeps, sweepCfg{
			label: fmt.Sprintf("PaCo-%02.0f%%", p*100),
			mk:    func() gating.Gate { return gating.NewProbGate(p, cfg.RefreshPeriod) },
		})
	}

	// One job per (configuration, benchmark) cell — the whole grid shards
	// across the worker pool at once.
	jobs := make([]campaign.Job, 0, len(sweeps)*len(benchmarks))
	for _, sc := range sweeps {
		for _, name := range benchmarks {
			mk := sc.mk
			job := benchJob(cfg, name, cfg.GatingInstructions, cfg.GatingWarmup, func() campaign.Hooks {
				g := mk()
				return campaign.Hooks{
					Estimators: []core.Estimator{g.Estimator()},
					Gate:       g.ShouldGate,
				}
			})
			job.ID = sc.label + "/" + name
			jobs = append(jobs, job)
		}
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}

	// Aggregate per configuration, benchmarks in order — the summation
	// order is fixed, so points are identical at any worker count.
	k := 0
	for _, sc := range sweeps {
		pt := GatingPoint{Config: sc.label}
		n := float64(len(benchmarks))
		for i := range benchmarks {
			r := results[k]
			k++
			b := base[i]
			pt.PerfLoss += 100 * (b.ipc - r.IPC) / b.ipc
			pt.BadpathReduction += reduction(b.execBad, float64(r.Stats.ExecutedBad))
			pt.FetchedBadReduction += reduction(b.fetchedBad, float64(r.Stats.FetchedBad))
			pt.GatedCycleFrac += float64(r.Stats.GatedCycles) / float64(r.Cycles)
		}
		pt.PerfLoss /= n
		pt.BadpathReduction /= n
		pt.FetchedBadReduction /= n
		pt.GatedCycleFrac /= n
		series := seriesOf(sc.label)
		out.Series[series] = append(out.Series[series], pt)
	}
	return out, nil
}

func seriesOf(label string) string {
	if len(label) >= 4 && label[:4] == "PaCo" {
		return "PaCo"
	}
	// JRS-thrN-gateM -> JRS-thrN
	for i := 4; i < len(label); i++ {
		if label[i] == '-' {
			return label[:i]
		}
	}
	return label
}

func reduction(before, after float64) float64 {
	if before <= 0 {
		return 0
	}
	return 100 * (before - after) / before
}

// Table renders the sweep, one row per configuration.
func (f *Figure10) Table() *metrics.Table {
	t := metrics.NewTable("config", "perf loss %", "badpath exec reduction %", "badpath fetch reduction %", "gated cycles %")
	for _, series := range f.Order {
		for _, p := range f.Series[series] {
			t.Row(p.Config,
				fmt.Sprintf("%+.2f", p.PerfLoss),
				fmt.Sprintf("%.1f", p.BadpathReduction),
				fmt.Sprintf("%.1f", p.FetchedBadReduction),
				fmt.Sprintf("%.1f", 100*p.GatedCycleFrac))
		}
	}
	return t
}

// Best returns the most aggressive point of a series whose performance
// loss stays at or below maxLoss percent.
func (f *Figure10) Best(series string, maxLoss float64) (GatingPoint, bool) {
	var best GatingPoint
	found := false
	for _, p := range f.Series[series] {
		if p.PerfLoss <= maxLoss && (!found || p.BadpathReduction > best.BadpathReduction) {
			best = p
			found = true
		}
	}
	return best, found
}

// Figure10Report writes the sweep table and the headline comparison.
func Figure10Report(cfg Config, w io.Writer) error {
	f, err := RunFigure10(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: pipeline gating — performance loss vs badpath-executed reduction")
	fmt.Fprintln(w, "(paper: PaCo reduces badpath instructions executed ~32% at ~0% perf loss;")
	fmt.Fprintln(w, " best counter predictor ~7% at ~0.1-0.2% loss; conservative PaCo gating can")
	fmt.Fprintln(w, " slightly *improve* performance by removing cache/BTB pollution)")
	fmt.Fprintln(w)
	if _, err := io.WriteString(w, f.Table().String()); err != nil {
		return err
	}
	if p, ok := f.Best("PaCo", 0.1); ok {
		fmt.Fprintf(w, "\nheadline PaCo point (<=0.1%% loss): %s -> badpath exec -%.1f%%, fetch -%.1f%%\n",
			p.Config, p.BadpathReduction, p.FetchedBadReduction)
	}
	if p, ok := f.Best("JRS-thr3", 0.3); ok {
		fmt.Fprintf(w, "headline JRS-thr3 point (<=0.3%% loss): %s -> badpath exec -%.1f%%\n",
			p.Config, p.BadpathReduction)
	}
	return nil
}
