package experiments

import (
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/metrics"
	"paco/internal/workload"
)

func init() {
	register("fig3a", Figure3aReport)
	register("fig3b", Figure3bReport)
}

// CounterValueProbe measures the probability that the processor is on the
// goodpath at instances where the conventional predictor counts exactly
// `Count` unresolved low-confidence branches — the paper's Figure 3, which
// shows the same counter value maps to very different goodpath
// probabilities across benchmarks (3a) and phases (3b).
type CounterValueProbe struct {
	// Count is the counter value sampled (the paper uses 5).
	Count int
	// Threshold is the JRS confidence threshold (the paper uses 3).
	Threshold uint32
}

// DefaultCounterProbe is the paper's sampling point.
func DefaultCounterProbe() CounterValueProbe {
	return CounterValueProbe{Count: 5, Threshold: 3}
}

// Figure3Row is one measured bar of Figure 3.
type Figure3Row struct {
	Label     string
	Goodpath  float64 // P(goodpath | counter == Count), in percent
	Instances uint64
}

// RunFigure3a measures the goodpath probability at counter==Count for each
// benchmark (nil = the paper's Figure 3(a) subset).
func RunFigure3a(cfg Config, probe CounterValueProbe, benchmarks []string) ([]Figure3Row, error) {
	if benchmarks == nil {
		benchmarks = []string{"crafty", "gzip", "bzip2", "vprRoute"}
	}
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
			cnt := core.NewCountPredictor(probe.Threshold)
			var hits, good uint64
			return campaign.Hooks{
				Estimators: []core.Estimator{cnt},
				Probe: func(_ int, onGood bool) {
					if cnt.Count() == probe.Count {
						hits++
						if onGood {
							good++
						}
					}
				},
				Collect: func(res *campaign.Result, _ *cpu.Core, _ int) {
					res.SetExtra("hits", float64(hits))
					res.SetExtra("good", float64(good))
				},
			}
		})
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	var rows []Figure3Row
	for i, name := range benchmarks {
		hits := uint64(results[i].Extra["hits"])
		good := uint64(results[i].Extra["good"])
		rows = append(rows, Figure3Row{Label: name, Goodpath: pct(good, hits), Instances: hits})
	}
	return rows, nil
}

// RunFigure3b measures the same quantity separately for the first two
// phases of mcf and gcc (the paper's Figure 3(b)).
func RunFigure3b(cfg Config, probe CounterValueProbe) ([]Figure3Row, error) {
	benchmarks := []string{"mcf", "gcc"}
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
			cnt := core.NewCountPredictor(probe.Threshold)
			var wk *workload.Walker
			var hits, good [2]uint64
			return campaign.Hooks{
				Estimators: []core.Estimator{cnt},
				Attached: func(c *cpu.Core, tid int) {
					wk = c.Walker(tid)
				},
				Probe: func(_ int, onGood bool) {
					ph := wk.Phase()
					if ph > 1 || cnt.Count() != probe.Count {
						return
					}
					hits[ph]++
					if onGood {
						good[ph]++
					}
				},
				Collect: func(res *campaign.Result, _ *cpu.Core, _ int) {
					for ph := 0; ph < 2; ph++ {
						res.SetExtra(fmt.Sprintf("hits%d", ph), float64(hits[ph]))
						res.SetExtra(fmt.Sprintf("good%d", ph), float64(good[ph]))
					}
				},
			}
		})
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	var rows []Figure3Row
	for i, name := range benchmarks {
		for ph := 0; ph < 2; ph++ {
			hits := uint64(results[i].Extra[fmt.Sprintf("hits%d", ph)])
			good := uint64(results[i].Extra[fmt.Sprintf("good%d", ph)])
			rows = append(rows, Figure3Row{
				Label:     fmt.Sprintf("%s_phase%d", name, ph+1),
				Goodpath:  pct(good, hits),
				Instances: hits,
			})
		}
	}
	return rows, nil
}

func figure3Table(rows []Figure3Row) *metrics.Table {
	t := metrics.NewTable("workload", "P(goodpath) %", "instances")
	for _, r := range rows {
		t.Row(r.Label, fmt.Sprintf("%.1f", r.Goodpath), r.Instances)
	}
	return t
}

// Figure3aReport writes the Figure 3(a) table.
func Figure3aReport(cfg Config, w io.Writer) error {
	rows, err := RunFigure3a(cfg, DefaultCounterProbe(), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3(a): goodpath probability when 5 low-confidence branches are outstanding")
	fmt.Fprintln(w, "(paper: ~10% for vprRoute up to ~40% for gzip — the same counter value means")
	fmt.Fprintln(w, " very different goodpath likelihoods across benchmarks)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, figure3Table(rows).String())
	return err
}

// Figure3bReport writes the Figure 3(b) table.
func Figure3bReport(cfg Config, w io.Writer) error {
	rows, err := RunFigure3b(cfg, DefaultCounterProbe())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3(b): goodpath probability at counter value 5, by program phase")
	fmt.Fprintln(w, "(paper: the best gating counter value changes between phases of one benchmark)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, figure3Table(rows).String())
	return err
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
