package experiments

import (
	"fmt"
	"io"

	"paco/internal/bitutil"
	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/gating"
	"paco/internal/metrics"
)

func init() {
	register("ablate-refresh", AblateRefreshReport)
	register("ablate-stratifier", AblateStratifierReport)
	register("ablate-throttle", AblateThrottleReport)
}

// AblateRefresh measures PaCo's accuracy sensitivity to the MRT
// logarithmization period (paper footnote 5: "PaCo's performance is not
// very sensitive to this period"). One row per period, RMS averaged over
// a benchmark subset.
func AblateRefresh(cfg Config, periods []uint64, benchmarks []string) (*metrics.Table, error) {
	if periods == nil {
		periods = []uint64{25_000, 50_000, 100_000, 200_000, 400_000, 800_000}
	}
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "gcc"}
	}
	t := metrics.NewTable("refresh period (cycles)", "mean RMS error")
	for _, period := range periods {
		sub := cfg
		sub.RefreshPeriod = period
		t7, err := RunTable7(sub, benchmarks)
		if err != nil {
			return nil, err
		}
		t.Row(period, t7.MeanRMS)
	}
	return t, nil
}

// AblateRefreshReport writes the refresh-period sensitivity table.
func AblateRefreshReport(cfg Config, w io.Writer) error {
	t, err := AblateRefresh(cfg, nil, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: MRT refresh-period sensitivity")
	fmt.Fprintln(w, "(paper footnote 5: accuracy should be largely insensitive to the period)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}

// oracleStratifier is a PaCo whose per-branch correct-prediction
// probability comes from an oracle that knows each bucket's long-run rate
// exactly (measured in a profiling pass and frozen) — it bounds what the
// 16-bucket stratification could achieve with a perfect, noiseless MRT.
// Reuses the StaticMRT machinery with an exact profile.

// AblateStratifier compares dynamic PaCo against the oracle-profiled
// static table on each benchmark: the gap is MRT measurement noise; the
// residual oracle error is the stratification limit itself.
func AblateStratifier(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "vortex"}
	}
	// Profiling wave, then the dynamic-vs-oracle measurement wave.
	profJobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		profJobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, nil)
	}
	profResults, err := runJobs(cfg, profJobs)
	if err != nil {
		return nil, err
	}
	rels := make([][2]*metrics.Reliability, len(benchmarks))
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		i := i
		profile := profileFromStats(profResults[i].Stats)
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
			profile := profile
			dyn := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
			oracle := core.NewStaticMRT(&profile)
			rel := [2]*metrics.Reliability{{}, {}}
			rels[i] = rel
			return relHooks([]core.Estimator{dyn, oracle},
				[]core.Probabilistic{dyn, oracle}, rel[:])
		})
	}
	if _, err := runJobs(cfg, jobs); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Benchmark", "dynamic MRT RMS", "oracle-profile RMS")
	for i, name := range benchmarks {
		t.Row(name, rels[i][0].RMSError(), rels[i][1].RMSError())
	}
	return t, nil
}

// AblateStratifierReport writes the stratification-limit table.
func AblateStratifierReport(cfg Config, w io.Writer) error {
	t, err := AblateStratifier(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: dynamic MRT vs oracle same-run profile")
	fmt.Fprintln(w, "(the oracle column bounds what 16-bucket stratification can achieve;")
	fmt.Fprintln(w, " the gap to the dynamic column is MRT sampling/refresh noise)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}

// throttleGate implements selective throttling (Aragón et al., discussed
// in the paper's Related Work): instead of all-or-nothing gating, fetch
// bandwidth degrades gradually as PaCo's goodpath probability falls.
// It gates a *fraction* of cycles proportional to how far confidence has
// dropped, using the encoded sum against two thresholds.
type throttleGate struct {
	paco *core.PaCo
	hi   int64 // above this sum: start throttling
	lo   int64 // above this sum: fully gated
	tick uint64
}

func newThrottleGate(hiProb, loProb float64, refresh uint64) *throttleGate {
	return &throttleGate{
		paco: core.NewPaCo(core.PaCoConfig{RefreshPeriod: refresh}),
		hi:   bitutil.EncodeProbThreshold(hiProb),
		lo:   bitutil.EncodeProbThreshold(loProb),
	}
}

func (g *throttleGate) Name() string              { return "PaCo-throttle" }
func (g *throttleGate) Estimator() core.Estimator { return g.paco }

// ShouldGate gates a duty-cycle fraction of cycles that rises linearly
// from 0 (sum <= hi) to 1 (sum >= lo).
func (g *throttleGate) ShouldGate() bool {
	sum := g.paco.EncodedSum()
	if sum <= g.hi {
		return false
	}
	if sum >= g.lo {
		return true
	}
	g.tick++
	span := g.lo - g.hi
	frac := sum - g.hi
	// Gate frac/span of cycles, spread evenly.
	return int64(g.tick%8)*span < frac*8
}

var _ gating.Gate = (*throttleGate)(nil)

// AblateThrottle compares all-or-nothing PaCo gating against selective
// throttling at matched aggressiveness.
func AblateThrottle(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "bzip2", "twolf", "parser"}
	}
	t := metrics.NewTable("scheme", "perf loss %", "badpath exec reduction %", "gated cycles %")
	schemes := []struct {
		name string
		mk   func() gating.Gate
	}{
		{"PaCo-gate-20%", func() gating.Gate { return gating.NewProbGate(0.20, cfg.RefreshPeriod) }},
		{"PaCo-gate-50%", func() gating.Gate { return gating.NewProbGate(0.50, cfg.RefreshPeriod) }},
		{"PaCo-throttle-50..10%", func() gating.Gate { return newThrottleGate(0.50, 0.10, cfg.RefreshPeriod) }},
	}
	// Baselines per benchmark, then the whole (scheme x benchmark) grid
	// as one campaign.
	baseJobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		baseJobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, nil)
	}
	baseResults, err := runJobs(cfg, baseJobs)
	if err != nil {
		return nil, err
	}
	type base struct{ ipc, execBad float64 }
	bases := make([]base, len(benchmarks))
	for i := range benchmarks {
		bases[i] = base{ipc: baseResults[i].IPC, execBad: float64(baseResults[i].Stats.ExecutedBad)}
	}
	jobs := make([]campaign.Job, 0, len(schemes)*len(benchmarks))
	for _, sc := range schemes {
		for _, name := range benchmarks {
			mk := sc.mk
			job := benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
				g := mk()
				return campaign.Hooks{
					Estimators: []core.Estimator{g.Estimator()},
					Gate:       g.ShouldGate,
				}
			})
			job.ID = sc.name + "/" + name
			jobs = append(jobs, job)
		}
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, sc := range schemes {
		var loss, red, gated float64
		for i := range benchmarks {
			r := results[k]
			k++
			b := bases[i]
			loss += 100 * (b.ipc - r.IPC) / b.ipc
			red += reduction(b.execBad, float64(r.Stats.ExecutedBad))
			gated += 100 * float64(r.Stats.GatedCycles) / float64(r.Cycles)
		}
		n := float64(len(benchmarks))
		t.Row(sc.name, fmt.Sprintf("%+.2f", loss/n), fmt.Sprintf("%.1f", red/n), fmt.Sprintf("%.1f", gated/n))
	}
	return t, nil
}

// AblateThrottleReport writes the selective-throttling comparison.
func AblateThrottleReport(cfg Config, w io.Writer) error {
	t, err := AblateThrottle(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: all-or-nothing gating vs selective throttling (Aragón-style)")
	fmt.Fprintln(w, "(the paper argues PaCo's fine-grained estimate should suit gradual throttling)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}
