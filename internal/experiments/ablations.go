package experiments

import (
	"fmt"
	"io"

	"paco/internal/bitutil"
	"paco/internal/core"
	"paco/internal/gating"
	"paco/internal/metrics"
)

func init() {
	register("ablate-refresh", AblateRefreshReport)
	register("ablate-stratifier", AblateStratifierReport)
	register("ablate-throttle", AblateThrottleReport)
}

// AblateRefresh measures PaCo's accuracy sensitivity to the MRT
// logarithmization period (paper footnote 5: "PaCo's performance is not
// very sensitive to this period"). One row per period, RMS averaged over
// a benchmark subset.
func AblateRefresh(cfg Config, periods []uint64, benchmarks []string) (*metrics.Table, error) {
	if periods == nil {
		periods = []uint64{25_000, 50_000, 100_000, 200_000, 400_000, 800_000}
	}
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "gcc"}
	}
	t := metrics.NewTable("refresh period (cycles)", "mean RMS error")
	for _, period := range periods {
		sub := cfg
		sub.RefreshPeriod = period
		t7, err := RunTable7(sub, benchmarks)
		if err != nil {
			return nil, err
		}
		t.Row(period, t7.MeanRMS)
	}
	return t, nil
}

// AblateRefreshReport writes the refresh-period sensitivity table.
func AblateRefreshReport(cfg Config, w io.Writer) error {
	t, err := AblateRefresh(cfg, nil, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: MRT refresh-period sensitivity")
	fmt.Fprintln(w, "(paper footnote 5: accuracy should be largely insensitive to the period)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}

// oracleStratifier is a PaCo whose per-branch correct-prediction
// probability comes from an oracle that knows each bucket's long-run rate
// exactly (measured in a profiling pass and frozen) — it bounds what the
// 16-bucket stratification could achieve with a perfect, noiseless MRT.
// Reuses the StaticMRT machinery with an exact profile.

// AblateStratifier compares dynamic PaCo against the oracle-profiled
// static table on each benchmark: the gap is MRT measurement noise; the
// residual oracle error is the stratification limit itself.
func AblateStratifier(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "parser", "twolf", "vortex"}
	}
	t := metrics.NewTable("Benchmark", "dynamic MRT RMS", "oracle-profile RMS")
	for _, name := range benchmarks {
		prof, err := runOne(cfg, name, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		profile := profileFromStats(prof)

		dyn := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
		oracle := core.NewStaticMRT(&profile)
		rels := [2]*metrics.Reliability{{}, {}}
		ests := []core.Probabilistic{dyn, oracle}
		if _, err := runOne(cfg, name, []core.Estimator{dyn, oracle}, nil,
			func(_ int, onGood bool) {
				for i, e := range ests {
					rels[i].Add(e.GoodpathProb(), onGood)
				}
			}); err != nil {
			return nil, err
		}
		t.Row(name, rels[0].RMSError(), rels[1].RMSError())
	}
	return t, nil
}

// AblateStratifierReport writes the stratification-limit table.
func AblateStratifierReport(cfg Config, w io.Writer) error {
	t, err := AblateStratifier(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: dynamic MRT vs oracle same-run profile")
	fmt.Fprintln(w, "(the oracle column bounds what 16-bucket stratification can achieve;")
	fmt.Fprintln(w, " the gap to the dynamic column is MRT sampling/refresh noise)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}

// throttleGate implements selective throttling (Aragón et al., discussed
// in the paper's Related Work): instead of all-or-nothing gating, fetch
// bandwidth degrades gradually as PaCo's goodpath probability falls.
// It gates a *fraction* of cycles proportional to how far confidence has
// dropped, using the encoded sum against two thresholds.
type throttleGate struct {
	paco *core.PaCo
	hi   int64 // above this sum: start throttling
	lo   int64 // above this sum: fully gated
	tick uint64
}

func newThrottleGate(hiProb, loProb float64, refresh uint64) *throttleGate {
	return &throttleGate{
		paco: core.NewPaCo(core.PaCoConfig{RefreshPeriod: refresh}),
		hi:   bitutil.EncodeProbThreshold(hiProb),
		lo:   bitutil.EncodeProbThreshold(loProb),
	}
}

func (g *throttleGate) Name() string              { return "PaCo-throttle" }
func (g *throttleGate) Estimator() core.Estimator { return g.paco }

// ShouldGate gates a duty-cycle fraction of cycles that rises linearly
// from 0 (sum <= hi) to 1 (sum >= lo).
func (g *throttleGate) ShouldGate() bool {
	sum := g.paco.EncodedSum()
	if sum <= g.hi {
		return false
	}
	if sum >= g.lo {
		return true
	}
	g.tick++
	span := g.lo - g.hi
	frac := sum - g.hi
	// Gate frac/span of cycles, spread evenly.
	return int64(g.tick%8)*span < frac*8
}

var _ gating.Gate = (*throttleGate)(nil)

// AblateThrottle compares all-or-nothing PaCo gating against selective
// throttling at matched aggressiveness.
func AblateThrottle(cfg Config, benchmarks []string) (*metrics.Table, error) {
	if benchmarks == nil {
		benchmarks = []string{"gzip", "bzip2", "twolf", "parser"}
	}
	t := metrics.NewTable("scheme", "perf loss %", "badpath exec reduction %", "gated cycles %")
	schemes := []struct {
		name string
		mk   func() gating.Gate
	}{
		{"PaCo-gate-20%", func() gating.Gate { return gating.NewProbGate(0.20, cfg.RefreshPeriod) }},
		{"PaCo-gate-50%", func() gating.Gate { return gating.NewProbGate(0.50, cfg.RefreshPeriod) }},
		{"PaCo-throttle-50..10%", func() gating.Gate { return newThrottleGate(0.50, 0.10, cfg.RefreshPeriod) }},
	}
	// Baselines per benchmark.
	type base struct{ ipc, execBad float64 }
	bases := map[string]base{}
	for _, name := range benchmarks {
		r, err := runOne(cfg, name, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		st := r.stats()
		bases[name] = base{ipc: r.ipc(), execBad: float64(st.ExecutedBad)}
	}
	for _, sc := range schemes {
		var loss, red, gated float64
		for _, name := range benchmarks {
			g := sc.mk()
			r, err := runOne(cfg, name, []core.Estimator{g.Estimator()}, g.ShouldGate, nil)
			if err != nil {
				return nil, err
			}
			st := r.stats()
			b := bases[name]
			loss += 100 * (b.ipc - r.ipc()) / b.ipc
			red += reduction(b.execBad, float64(st.ExecutedBad))
			gated += 100 * float64(st.GatedCycles) / float64(r.Core.Stats().Cycles)
		}
		n := float64(len(benchmarks))
		t.Row(sc.name, fmt.Sprintf("%+.2f", loss/n), fmt.Sprintf("%.1f", red/n), fmt.Sprintf("%.1f", gated/n))
	}
	return t, nil
}

// AblateThrottleReport writes the selective-throttling comparison.
func AblateThrottleReport(cfg Config, w io.Writer) error {
	t, err := AblateThrottle(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: all-or-nothing gating vs selective throttling (Aragón-style)")
	fmt.Fprintln(w, "(the paper argues PaCo's fine-grained estimate should suit gradual throttling)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t.String())
	return err
}
