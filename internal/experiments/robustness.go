package experiments

import (
	"fmt"
	"io"

	"paco/internal/bitutil"
	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/metrics"
	"paco/internal/scenario"
)

func init() { register("robustness", RobustnessReport) }

// The robustness study asks the estimator question the SPEC-only tables
// cannot: how does goodpath-probability accuracy hold up when the
// workload is shaped against the estimator? Each scenario family
// (internal/scenario) isolates one stressor — interpreter dispatch,
// shallow server phases, pointer chasing, phase thrash faster than the
// MRT refresh, a predictable floor, and a branch population crafted so
// per-bucket mispredict rates straddle the JRS threshold — and each is
// measured with three estimators:
//
//   - PaCo: the paper's MDC-stratified dynamic MRT.
//   - JRS-count: threshold-and-count confidence made probabilistic the
//     only way it can be without PaCo's hardware — every unresolved
//     low-confidence branch is assigned one FIXED design-time correct
//     rate (no training, no stratification). This is exactly the "single
//     mispredict rate" assumption Figure 2 argues against.
//   - perceptron: PaCo unchanged but stratified by Akkary-style
//     perceptron confidence buckets instead of the JRS MDC.
//
// Accuracy is reported on two axes: the paper's Table 7 metric
// (occupancy-weighted RMS error of a reliability diagram against the
// goodpath oracle — calibration) and the Murphy-decomposition resolution
// (discrimination). The pairing matters because a hedging, near-constant
// model can look well calibrated while separating nothing; and a fixed
// assumed rate cannot follow the workload — on the predictable floor
// case its pessimism is unfixable, which is where the trained, stratified
// estimator wins outright.

// jrsCountProb is the JRS-count column's estimator: the conventional
// threshold-and-count predictor (Figure 1) with its implicit probability
// model made explicit — P(goodpath) = q^count for a fixed design-time
// per-branch correct rate q. Each unresolved low-confidence branch (MDC
// below the threshold) contributes the same fixed encoding; branches at
// or above the threshold are treated as certain, which is precisely what
// count gating assumes. The rate is NOT trained: without PaCo's
// logarithmization circuit there is no hardware path from measured rates
// to encodings, so the count's single q is frozen at design time — and
// any workload whose low-confidence population misses q (which is what
// adversarial-mdc arranges) is systematically mis-estimated.
// It embeds the real threshold-and-count predictor for the entire
// branch lifecycle, adding only the probability view: every tracked
// branch carries the same fixed encoding, so the encoded sum is simply
// count times that encoding.
type jrsCountProb struct {
	*core.CountPredictor
	enc uint32 // fixed encoding of the design-time rate
}

// jrsCountAssumedRate is the design-time per-low-confidence-branch
// correct rate: the middle of the band Figure 2 measures for buckets
// under the conventional threshold.
const jrsCountAssumedRate = 0.85

func newJRSCountProb(thr uint32) *jrsCountProb {
	return &jrsCountProb{
		CountPredictor: core.NewCountPredictor(thr),
		enc:            bitutil.ExactEncode(jrsCountAssumedRate),
	}
}

// EncodedSum implements core.Probabilistic.
func (j *jrsCountProb) EncodedSum() int64 { return int64(j.Count()) * int64(j.enc) }

// GoodpathProb implements core.Probabilistic.
func (j *jrsCountProb) GoodpathProb() float64 { return bitutil.DecodeProb(j.EncodedSum()) }

var _ core.Probabilistic = (*jrsCountProb)(nil)

// RobustnessRow is one scenario's accuracy measurement. RMS columns are
// calibration (Table 7's metric); Disc columns are discrimination
// (metrics.Reliability.Resolution) — the axis a constant predictor
// cannot fake. The fixed-rate JRS-count model hedges its way to a low
// RMS on hostile populations but cannot adapt to easy ones (loopy) and
// separates paths only as well as the raw count does; reading both
// columns together is the point of the study.
type RobustnessRow struct {
	Scenario      string
	PaCoRMS       float64
	JRSCountRMS   float64
	PerceptronRMS float64
	PaCoDisc      float64
	JRSCountDisc  float64
	CondMR        float64
}

// Robustness is the full study.
type Robustness struct {
	Rows []RobustnessRow
	// Means are the column means, in row order of the struct fields.
	MeanPaCo, MeanJRS, MeanPerceptron float64
}

// defaultRobustnessScenarios is every workload family at its default
// parameters plus two SPEC reference points bracketing the difficulty
// range, so the family rows read against known ground.
func defaultRobustnessScenarios() []scenario.Scenario {
	var out []scenario.Scenario
	for _, f := range scenario.Families() {
		out = append(out, scenario.Scenario{Family: f.Name})
	}
	out = append(out,
		scenario.Scenario{Base: "gzip"},  // easy SPEC reference
		scenario.Scenario{Base: "twolf"}, // hard SPEC reference
	)
	return out
}

// RunRobustness executes the study over the given scenarios (nil = every
// family at defaults plus the SPEC reference points). Results are
// deterministic at any cfg.Workers count: each (scenario, stratifier)
// cell is an independent campaign job and rows aggregate in input order.
func RunRobustness(cfg Config, scenarios []scenario.Scenario) (*Robustness, error) {
	if scenarios == nil {
		scenarios = defaultRobustnessScenarios()
	}
	const jrsThreshold = 3 // the paper's conventional-best count threshold

	specs := make([]*RobustnessRow, len(scenarios))
	// Two jobs per scenario: the JRS-MDC machine measuring PaCo and
	// JRS-count side by side, and the perceptron-stratified machine
	// measuring PaCo again.
	rels := make([]*metrics.Reliability, 3*len(scenarios))
	jobs := make([]campaign.Job, 0, 2*len(scenarios))
	for i, sc := range scenarios {
		i := i
		spec, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		specs[i] = &RobustnessRow{Scenario: spec.Name}

		mdcJob := campaign.Job{
			ID:           "robust:" + spec.Name + "/mdc",
			Benchmark:    spec.Name,
			Spec:         spec,
			Instructions: cfg.Instructions,
			Warmup:       cfg.Warmup,
			Machine:      cfg.Machine,
			Setup: func() campaign.Hooks {
				paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
				jrs := newJRSCountProb(jrsThreshold)
				pr, jr := &metrics.Reliability{}, &metrics.Reliability{}
				rels[3*i], rels[3*i+1] = pr, jr
				return relHooks([]core.Estimator{paco, jrs},
					[]core.Probabilistic{paco, jrs}, []*metrics.Reliability{pr, jr})
			},
		}
		perceptronMachine := cfg.machine()
		perceptronMachine.PerceptronStratifier = true
		percJob := campaign.Job{
			ID:           "robust:" + spec.Name + "/perceptron",
			Benchmark:    spec.Name,
			Spec:         spec,
			Instructions: cfg.Instructions,
			Warmup:       cfg.Warmup,
			Machine:      &perceptronMachine,
			Setup: func() campaign.Hooks {
				paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
				rel := &metrics.Reliability{}
				rels[3*i+2] = rel
				return relHooks([]core.Estimator{paco}, []core.Probabilistic{paco}, []*metrics.Reliability{rel})
			},
		}
		jobs = append(jobs, mdcJob, percJob)
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	out := &Robustness{}
	for i := range scenarios {
		row := specs[i]
		row.PaCoRMS = rels[3*i].RMSError()
		row.JRSCountRMS = rels[3*i+1].RMSError()
		row.PerceptronRMS = rels[3*i+2].RMSError()
		row.PaCoDisc = rels[3*i].Resolution()
		row.JRSCountDisc = rels[3*i+1].Resolution()
		row.CondMR = results[2*i].Stats.CondMispredictRate()
		out.Rows = append(out.Rows, *row)
		out.MeanPaCo += row.PaCoRMS
		out.MeanJRS += row.JRSCountRMS
		out.MeanPerceptron += row.PerceptronRMS
	}
	n := float64(len(out.Rows))
	out.MeanPaCo /= n
	out.MeanJRS /= n
	out.MeanPerceptron /= n
	return out, nil
}

// Table renders the study.
func (r *Robustness) Table() *metrics.Table {
	t := metrics.NewTable("Scenario", "PaCo RMS", "JRS-count RMS", "perceptron RMS",
		"PaCo disc", "JRS-count disc", "Cond. Br. Mispredict %")
	for _, row := range r.Rows {
		t.Row(row.Scenario, row.PaCoRMS, row.JRSCountRMS, row.PerceptronRMS,
			fmt.Sprintf("%.4f", row.PaCoDisc), fmt.Sprintf("%.4f", row.JRSCountDisc),
			fmt.Sprintf("%.2f", row.CondMR))
	}
	t.Row("mean", r.MeanPaCo, r.MeanJRS, r.MeanPerceptron, "", "", "")
	return t
}

// Row returns the named scenario's row, if present.
func (r *Robustness) Row(name string) (RobustnessRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == name {
			return row, true
		}
	}
	return RobustnessRow{}, false
}

// RobustnessReport writes the full study.
func RobustnessReport(cfg Config, w io.Writer) error {
	r, err := RunRobustness(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Robustness: estimator accuracy across declarative workload families")
	fmt.Fprintln(w, "(table7-style RMS plus discrimination; JRS-count = threshold-and-count's")
	fmt.Fprintln(w, " fixed design-time rate q^count, perceptron = PaCo re-stratified by")
	fmt.Fprintln(w, " perceptron confidence; adversarial-mdc is crafted so bucket rates straddle")
	fmt.Fprintln(w, " the count threshold. Read RMS and disc together: a hedging model keeps RMS")
	fmt.Fprintln(w, " low by never committing, but cannot adapt and discriminates less)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, r.Table().String())
	return err
}
