package experiments

import (
	"context"
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/cpu"
	"paco/internal/metrics"
	"paco/internal/smt"
)

func init() { register("fig12", Figure12Report) }

// Figure12 compares SMT fetch policies over the 16 benchmark pairs by
// HMWIPC, the paper's Figure 12.
type Figure12 struct {
	Policies []string
	Pairs    []smt.Pair
	// HMWIPC[pair.String()][policyName].
	HMWIPC map[string]map[string]float64
	Mean   map[string]float64
}

// defaultPolicies builds the paper's policy set: ICOUNT, the four
// threshold-and-count predictors, and PaCo.
func defaultPolicies(cfg Config) []smt.Policy {
	return []smt.Policy{
		smt.ICount{},
		smt.ConfCount{Threshold: 3},
		smt.ConfCount{Threshold: 7},
		smt.ConfCount{Threshold: 11},
		smt.ConfCount{Threshold: 15},
		&smt.PaCoPolicy{RefreshPeriod: cfg.RefreshPeriod},
	}
}

// RunFigure12 executes the SMT study: single-thread IPCs for weighting,
// then every pair under every policy. The runs are multi-thread SMT
// measurements the declarative job fields cannot express, so they ride
// the campaign engine as custom Exec jobs — the single-thread baselines
// as one wave, the (pair x policy) grid as a second.
func RunFigure12(cfg Config, pairs []smt.Pair) (*Figure12, error) {
	if pairs == nil {
		pairs = smt.Pairs16
	}
	rc := smt.RunConfig{
		WarmupCycles:  cfg.SMTWarmupCycles,
		MeasureCycles: cfg.SMTMeasureCycles,
		Machine:       cpu.SMTConfig(),
	}
	policyNames := make([]string, len(defaultPolicies(cfg)))
	for i, pol := range defaultPolicies(cfg) {
		policyNames[i] = pol.Name()
	}

	// Single-thread baselines, one job per distinct benchmark.
	var singles []string
	seen := map[string]bool{}
	for _, p := range pairs {
		for _, name := range []string{p.A, p.B} {
			if !seen[name] {
				seen[name] = true
				singles = append(singles, name)
			}
		}
	}
	singleJobs := make([]campaign.Job, len(singles))
	for i, name := range singles {
		name := name
		singleJobs[i] = campaign.Job{
			ID:        "single/" + name,
			Benchmark: name,
			Exec: func(context.Context) (*campaign.Result, error) {
				ipc, err := smt.SingleIPC(rc, name)
				return &campaign.Result{IPC: ipc}, err
			},
		}
	}
	singleResults, err := runJobs(cfg, singleJobs)
	if err != nil {
		return nil, err
	}
	single := map[string]float64{}
	for i, name := range singles {
		single[name] = singleResults[i].IPC
	}

	// The (pair x policy) grid. Each job constructs its own policy
	// instance so no estimator or policy state is shared across workers.
	jobs := make([]campaign.Job, 0, len(pairs)*len(policyNames))
	for _, pair := range pairs {
		for pi := range policyNames {
			pair, pi := pair, pi
			jobs = append(jobs, campaign.Job{
				ID: pair.String() + "/" + policyNames[pi],
				Exec: func(context.Context) (*campaign.Result, error) {
					a, b, err := smt.RunPair(rc, pair, defaultPolicies(cfg)[pi])
					if err != nil {
						return nil, err
					}
					res := &campaign.Result{Benchmark: pair.String()}
					res.SetExtra("ipc_a", a)
					res.SetExtra("ipc_b", b)
					return res, nil
				},
			})
		}
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}

	out := &Figure12{
		Pairs:    pairs,
		Policies: policyNames,
		HMWIPC:   map[string]map[string]float64{},
		Mean:     map[string]float64{},
	}
	k := 0
	for _, pair := range pairs {
		out.HMWIPC[pair.String()] = map[string]float64{}
		for _, pol := range policyNames {
			r := results[k]
			k++
			h := smt.HMWIPCForPair(single[pair.A], single[pair.B], r.Extra["ipc_a"], r.Extra["ipc_b"])
			out.HMWIPC[pair.String()][pol] = h
			out.Mean[pol] += h / float64(len(pairs))
		}
	}
	return out, nil
}

// Table renders pairs as rows, policies as columns.
func (f *Figure12) Table() *metrics.Table {
	header := append([]string{"pair"}, f.Policies...)
	t := metrics.NewTable(header...)
	for _, pair := range f.Pairs {
		row := make([]any, 0, len(header))
		row = append(row, pair.String())
		for _, pol := range f.Policies {
			row = append(row, fmt.Sprintf("%.3f", f.HMWIPC[pair.String()][pol]))
		}
		t.Row(row...)
	}
	row := make([]any, 0, len(header))
	row = append(row, "mean")
	for _, pol := range f.Policies {
		row = append(row, fmt.Sprintf("%.3f", f.Mean[pol]))
	}
	t.Row(row...)
	return t
}

// BestCounter returns the best-performing threshold-and-count policy by
// mean HMWIPC.
func (f *Figure12) BestCounter() (string, float64) {
	best, bestV := "", 0.0
	for name, v := range f.Mean {
		if name != "PaCo" && name != "ICOUNT" && v > bestV {
			best, bestV = name, v
		}
	}
	return best, bestV
}

// PaCoWins counts pairs where PaCo beats every threshold-and-count policy
// (the paper reports 14 of 16).
func (f *Figure12) PaCoWins() int {
	wins := 0
	for _, pair := range f.Pairs {
		h := f.HMWIPC[pair.String()]
		best := 0.0
		for _, pol := range f.Policies {
			if pol != "PaCo" && pol != "ICOUNT" && h[pol] > best {
				best = h[pol]
			}
		}
		if h["PaCo"] > best {
			wins++
		}
	}
	return wins
}

// Figure12Report writes the HMWIPC table and the headline comparisons.
func Figure12Report(cfg Config, w io.Writer) error {
	f, err := RunFigure12(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12: SMT fetch prioritization, HMWIPC per pair")
	fmt.Fprintln(w, "(paper: PaCo beats the best counter predictor by 5.4-5.5% on average, up to")
	fmt.Fprintln(w, " 23%, winning 14 of 16 pairs)")
	fmt.Fprintln(w)
	if _, err := io.WriteString(w, f.Table().String()); err != nil {
		return err
	}
	bestName, bestV := f.BestCounter()
	if bestV > 0 {
		fmt.Fprintf(w, "\nPaCo mean %.3f vs best counter (%s) %.3f: %+.1f%%; PaCo wins %d/%d pairs\n",
			f.Mean["PaCo"], bestName, bestV, 100*(f.Mean["PaCo"]-bestV)/bestV, f.PaCoWins(), len(f.Pairs))
	}
	return nil
}
