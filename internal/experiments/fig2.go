package experiments

import (
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/confidence"
	"paco/internal/metrics"
)

func init() { register("fig2", Figure2Report) }

// Figure2 measures, for each benchmark, the mispredict rate of retired
// conditional branches stratified by their MDC value at prediction time —
// the paper's Figure 2, which motivates PaCo: buckets below any threshold
// have very different mispredict rates, and "high-confidence" buckets still
// mispredict.
type Figure2 struct {
	Benchmarks []string
	// Rate[b][mdc] is the bucket mispredict rate in percent; Samples is
	// the bucket occupancy.
	Rate    map[string][confidence.NumBuckets]float64
	Samples map[string][confidence.NumBuckets]uint64
}

// RunFigure2 executes the experiment over the given benchmarks (nil = the
// paper's full set).
func RunFigure2(cfg Config, benchmarks []string) (*Figure2, error) {
	if benchmarks == nil {
		benchmarks = allBenchmarks()
	}
	out := &Figure2{
		Benchmarks: benchmarks,
		Rate:       map[string][confidence.NumBuckets]float64{},
		Samples:    map[string][confidence.NumBuckets]uint64{},
	}
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, nil)
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range benchmarks {
		st := results[i].Stats
		var rates [confidence.NumBuckets]float64
		var samples [confidence.NumBuckets]uint64
		for mdc := uint32(0); mdc < confidence.NumBuckets; mdc++ {
			rates[mdc], samples[mdc] = st.BucketMispredictRate(mdc)
		}
		out.Rate[name] = rates
		out.Samples[name] = samples
	}
	return out, nil
}

// Table renders the per-bucket mispredict rates, benchmarks as columns.
func (f *Figure2) Table() *metrics.Table {
	header := append([]string{"MDC"}, f.Benchmarks...)
	t := metrics.NewTable(header...)
	for mdc := 0; mdc < confidence.NumBuckets; mdc++ {
		row := make([]any, 0, len(header))
		row = append(row, mdc)
		for _, b := range f.Benchmarks {
			if f.Samples[b][mdc] == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f%%", f.Rate[b][mdc]))
			}
		}
		t.Row(row...)
	}
	return t
}

// Figure2Report runs the experiment on the paper's representative subset
// and writes the table.
func Figure2Report(cfg Config, w io.Writer) error {
	f, err := RunFigure2(cfg, []string{"gcc", "vortex", "twolf", "gzip", "parser"})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2: mispredict rate (%) of retired conditional branches by MDC value")
	fmt.Fprintln(w, "(paper: rates vary widely below any threshold, e.g. 43% at MDC 0 vs 12-15%")
	fmt.Fprintln(w, " at MDC 2, and 'high-confidence' buckets still mispredict)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, f.Table().String())
	return err
}

func allBenchmarks() []string {
	return append([]string(nil), benchmarkNames...)
}
