package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"paco/internal/campaign"
	"paco/internal/scenario"
	"paco/internal/smt"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate-perceptron", "ablate-refresh", "ablate-stratifier",
		"ablate-throttle", "fig10", "fig12", "fig2", "fig3a", "fig3b", "fig8",
		"fig9", "robustness", "table7", "tableA1"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("nope", Quick(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFigure2(t *testing.T) {
	cfg := Quick()
	f, err := RunFigure2(cfg, []string{"gzip", "twolf"})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 0 must mispredict more than bucket 15 on both.
	for _, b := range f.Benchmarks {
		if f.Samples[b][0] == 0 || f.Samples[b][15] == 0 {
			t.Fatalf("%s: empty extreme buckets", b)
		}
		if f.Rate[b][0] <= f.Rate[b][15] {
			t.Fatalf("%s: bucket rates not declining: %.1f vs %.1f", b, f.Rate[b][0], f.Rate[b][15])
		}
	}
	// twolf (hard) should have a higher bucket-0 rate than gzip (easy).
	if f.Rate["twolf"][0] <= f.Rate["gzip"][0] {
		t.Fatalf("twolf bucket0 %.1f <= gzip bucket0 %.1f", f.Rate["twolf"][0], f.Rate["gzip"][0])
	}
	if !strings.Contains(f.Table().String(), "MDC") {
		t.Fatal("table rendering")
	}
}

func TestFigure3a(t *testing.T) {
	cfg := Quick()
	rows, err := RunFigure3a(cfg, DefaultCounterProbe(), []string{"gzip", "twolf"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure3Row{}
	for _, r := range rows {
		if r.Instances == 0 {
			t.Fatalf("%s: no instances at counter==5", r.Label)
		}
		byName[r.Label] = r
	}
	// The paper's point: the same counter value means a much higher
	// goodpath probability for an easy benchmark than a hard one.
	if byName["gzip"].Goodpath <= byName["twolf"].Goodpath {
		t.Fatalf("gzip %.1f%% <= twolf %.1f%% at counter 5",
			byName["gzip"].Goodpath, byName["twolf"].Goodpath)
	}
}

func TestFigure3b(t *testing.T) {
	cfg := Quick()
	cfg.Instructions = 1_200_000 // must cover both mcf phases (500k each)
	rows, err := RunFigure3b(cfg, DefaultCounterProbe())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var mcf1, mcf2 Figure3Row
	for _, r := range rows {
		switch r.Label {
		case "mcf_phase1":
			mcf1 = r
		case "mcf_phase2":
			mcf2 = r
		}
	}
	if mcf1.Instances == 0 || mcf2.Instances == 0 {
		t.Fatal("phase sampling produced no instances")
	}
	// Phase 2 is tuned much harder than phase 1: goodpath probability at
	// the same counter value must differ between phases.
	if diff := mcf1.Goodpath - mcf2.Goodpath; diff < 1 {
		t.Fatalf("phases indistinguishable: %.1f vs %.1f", mcf1.Goodpath, mcf2.Goodpath)
	}
}

func TestTable7(t *testing.T) {
	cfg := Quick()
	t7, err := RunTable7(cfg, []string{"gzip", "vortex"})
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range t7.Rows {
		if r.RMS <= 0 || r.RMS > 0.5 {
			t.Fatalf("%s RMS %.4f implausible", r.Benchmark, r.RMS)
		}
		if r.Reliability.Instances() == 0 {
			t.Fatalf("%s: no instances", r.Benchmark)
		}
	}
	if t7.Cumulative.Instances() == 0 {
		t.Fatal("cumulative diagram empty")
	}
	if _, ok := t7.Row("gzip"); !ok {
		t.Fatal("row lookup")
	}
	if _, ok := t7.Row("nope"); ok {
		t.Fatal("phantom row")
	}
}

func TestFigure10(t *testing.T) {
	cfg := Quick()
	f, err := RunFigure10(cfg, []string{"gzip", "twolf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series["PaCo"]) != len(cfg.ProbTargets) {
		t.Fatalf("PaCo series has %d points", len(f.Series["PaCo"]))
	}
	for _, thr := range cfg.GateThresholds {
		name := "JRS-thr" + strconv.Itoa(int(thr))
		if len(f.Series[name]) != len(cfg.GateCounts) {
			t.Fatalf("%s series has %d points", name, len(f.Series[name]))
		}
		// More aggressive gating (later points) must not reduce badpath
		// executed less than doing nothing at all, and must gate cycles.
		last := f.Series[name][len(f.Series[name])-1]
		if last.GatedCycleFrac == 0 {
			t.Fatalf("%s most aggressive point never gated", name)
		}
	}
	if !strings.Contains(f.Table().String(), "PaCo") {
		t.Fatal("table rendering")
	}
	if _, ok := f.Best("PaCo", 100); !ok {
		t.Fatal("Best found nothing under a permissive loss bound")
	}
}

func TestFigure12(t *testing.T) {
	cfg := Quick()
	pairs := []smt.Pair{{A: "gzip", B: "twolf"}, {A: "vortex", B: "bzip2"}}
	f, err := RunFigure12(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Policies) != 6 {
		t.Fatalf("policies = %v", f.Policies)
	}
	for _, p := range pairs {
		for _, pol := range f.Policies {
			h := f.HMWIPC[p.String()][pol]
			if h <= 0 || h > 1.5 {
				t.Fatalf("%s/%s HMWIPC %.3f implausible", p, pol, h)
			}
		}
	}
	if f.Mean["PaCo"] <= 0 {
		t.Fatal("mean missing")
	}
	if wins := f.PaCoWins(); wins < 0 || wins > len(pairs) {
		t.Fatalf("wins = %d", wins)
	}
}

func TestTableA1(t *testing.T) {
	cfg := Quick()
	a, err := RunTableA1(cfg, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	r := a.Rows[0]
	if r.DynamicMRT <= 0 || r.StaticMRT <= 0 || r.PerBranchMRT <= 0 {
		t.Fatalf("zero RMS in %+v", r)
	}
	if !strings.Contains(a.Table().String(), "Static MRT") {
		t.Fatal("table rendering")
	}
}

func TestAblations(t *testing.T) {
	cfg := Quick()
	tbl, err := AblateRefresh(cfg, []uint64{20_000, 80_000}, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "20000") {
		t.Fatal("refresh ablation rendering")
	}
	tbl, err = AblateStratifier(cfg, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(tbl.String()), "\n")) < 3 {
		t.Fatal("stratifier ablation rendering")
	}
	tbl, err = AblateThrottle(cfg, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "throttle") {
		t.Fatal("throttle ablation rendering")
	}
}

func TestRobustness(t *testing.T) {
	cfg := Quick()
	scs := []scenario.Scenario{
		{Family: "adversarial-mdc"},
		{Family: "loopy"},
	}
	r, err := RunRobustness(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PaCoRMS <= 0 || row.PaCoRMS > 0.5 {
			t.Fatalf("%s: PaCo RMS %.4f implausible", row.Scenario, row.PaCoRMS)
		}
		if row.JRSCountRMS <= 0 || row.PerceptronRMS <= 0 {
			t.Fatalf("%s: zero column in %+v", row.Scenario, row)
		}
	}
	adv, _ := r.Row("adversarial-mdc")
	loopy, _ := r.Row("loopy")
	// The families bracket difficulty: the adversarial population must
	// mispredict far more than the floor case.
	if adv.CondMR <= loopy.CondMR {
		t.Fatalf("adversarial-mdc MR %.2f <= loopy MR %.2f", adv.CondMR, loopy.CondMR)
	}
	// On the predictable floor case the fixed design-time rate is
	// unfixably pessimistic; PaCo's trained per-bucket rates adapt and
	// must win on calibration.
	if loopy.PaCoRMS >= loopy.JRSCountRMS {
		t.Fatalf("loopy: PaCo RMS %.4f >= JRS-count RMS %.4f — trained rates buy nothing on the floor case",
			loopy.PaCoRMS, loopy.JRSCountRMS)
	}
	// Discrimination must be measured (nonzero) for both models on the
	// adversarial population.
	if adv.PaCoDisc <= 0 || adv.JRSCountDisc <= 0 {
		t.Fatalf("adversarial-mdc: zero discrimination: %+v", adv)
	}
	if !strings.Contains(r.Table().String(), "adversarial-mdc") {
		t.Fatal("table rendering")
	}
}

// TestRobustnessWorkerCountDeterminism is the new experiment's
// acceptance criterion: the report is byte-identical at any worker
// count.
func TestRobustnessWorkerCountDeterminism(t *testing.T) {
	cfg := Quick()
	cfg.Instructions = 40_000
	cfg.Warmup = 15_000
	render := func(workers int) string {
		c := cfg
		c.Workers = workers
		var buf bytes.Buffer
		if err := RobustnessReport(c, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("robustness reports differ across worker counts:\n-j1:\n%s\n-j8:\n%s", serial, parallel)
	}
}

// TestWorkerCountDeterminism is the campaign rewiring's acceptance
// criterion: for a fixed configuration, reports are byte-identical
// whether the jobs run serially or across 8 workers.
func TestWorkerCountDeterminism(t *testing.T) {
	cfg := Quick()
	cfg.Instructions = 40_000
	cfg.Warmup = 15_000
	cfg.GatingInstructions = 25_000
	cfg.GatingWarmup = 8_000
	cfg.GateThresholds = []uint32{3}
	cfg.GateCounts = []int{2, 6}
	cfg.ProbTargets = []float64{0.2, 0.5}

	render := func(workers int) string {
		c := cfg
		c.Workers = workers
		var buf bytes.Buffer
		t7, err := RunTable7(c, []string{"gzip", "twolf", "bzip2"})
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(t7.Table().String())
		f10, err := RunFigure10(c, []string{"gzip", "twolf"})
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(f10.Table().String())
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("reports differ across worker counts:\n-j1:\n%s\n-j8:\n%s", serial, parallel)
	}
}

// TestReportsRender drives every registered report at tiny scale through
// the io.Writer interface.
func TestReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment")
	}
	cfg := Quick()
	cfg.Instructions = 60_000
	cfg.Warmup = 25_000
	cfg.GatingInstructions = 30_000
	cfg.GatingWarmup = 10_000
	cfg.SMTWarmupCycles = 5_000
	cfg.SMTMeasureCycles = 15_000
	cfg.GateThresholds = []uint32{3}
	cfg.GateCounts = []int{2}
	cfg.ProbTargets = []float64{0.2}
	for _, name := range Names() {
		if name == "fig3b" {
			continue // needs full phase coverage; tested directly above
		}
		var buf bytes.Buffer
		if err := Run(name, cfg, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

// TestBatchedExperimentsByteIdentical renders whole paper experiments —
// every campaign fig2 and the robustness study submit — through a
// batched-lockstep campaign runner and requires the reports to be
// byte-identical to the default unbatched path. This is the
// experiment-level face of the batching guarantee: batch width, like
// worker count, must never change result bytes.
func TestBatchedExperimentsByteIdentical(t *testing.T) {
	for _, name := range []string{"fig2", "robustness"} {
		t.Run(name, func(t *testing.T) {
			cfg := Quick()
			cfg.Workers = 2
			var plain bytes.Buffer
			if err := Run(name, cfg, &plain); err != nil {
				t.Fatalf("unbatched %s: %v", name, err)
			}

			bcfg := cfg
			bcfg.Execute = func(ctx context.Context, workers int, jobs []campaign.Job) ([]campaign.Result, error) {
				r := campaign.Runner{Workers: workers, BatchK: 8}
				return r.Run(ctx, jobs)
			}
			var batched bytes.Buffer
			if err := Run(name, bcfg, &batched); err != nil {
				t.Fatalf("batched %s: %v", name, err)
			}
			if !bytes.Equal(plain.Bytes(), batched.Bytes()) {
				t.Fatalf("%s report differs between unbatched and batched execution\nunbatched:\n%s\nbatched:\n%s",
					name, plain.String(), batched.String())
			}
		})
	}
}
