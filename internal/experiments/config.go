// Package experiments reproduces every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index): Figure 2 (bucket
// mispredict rates), Figure 3 (goodpath probability at a fixed counter
// value), Table 7 (PaCo RMS error), Figures 8/9 (reliability diagrams),
// Figure 10 (pipeline gating sweep), Figure 12 (SMT fetch prioritization)
// and Appendix Table 1 (MRT variants). Each experiment produces aligned
// text tables whose rows/series match what the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"paco/internal/campaign"
	"paco/internal/cpu"
)

// Config scales every experiment; Default matches the repository's
// headline numbers, Quick is small enough for unit tests and benchmarks.
type Config struct {
	// Instructions and Warmup size the single-benchmark measurement runs
	// (Figures 2/3/8/9, Table 7, Appendix Table 1). Warmup instructions
	// train predictors and caches before statistics reset.
	Instructions, Warmup uint64

	// GatingInstructions and GatingWarmup size each point of the Figure
	// 10 sweep (dozens of configurations per benchmark).
	GatingInstructions, GatingWarmup uint64

	// SMTWarmupCycles and SMTMeasureCycles bound each Figure 12 run.
	SMTWarmupCycles, SMTMeasureCycles uint64

	// RefreshPeriod is PaCo's MRT logarithmization period in cycles
	// (paper: 200,000).
	RefreshPeriod uint64

	// GateThresholds and GateCounts define the conventional-predictor
	// gating design space (paper: thresholds 3/7/11/15, gate-counts
	// 1..10). ProbTargets are PaCo's gating targets as probabilities
	// (paper: 2% to 90% in increments of 4).
	GateThresholds []uint32
	GateCounts     []int
	ProbTargets    []float64

	// Machine overrides the single-thread machine (zero value selects
	// cpu.DefaultConfig()).
	Machine *cpu.Config

	// Workers bounds the campaign worker pool every experiment submits
	// its simulation jobs to (<= 0 selects runtime.GOMAXPROCS(0)). For a
	// fixed configuration, results are identical regardless of worker
	// count.
	Workers int

	// Execute, when non-nil, replaces the in-process campaign pool as
	// the executor every experiment submits its measurement jobs to —
	// the injection point the distributed-determinism harness
	// (internal/server/servertest) uses to run whole experiments through
	// a multi-worker federation and assert the report bytes never
	// change. Implementations must preserve the campaign contract:
	// one Result per job, in job order. Never part of a cache key
	// (execution strategy cannot perturb deterministic results).
	Execute func(ctx context.Context, workers int, jobs []campaign.Job) ([]campaign.Result, error) `json:"-"`
}

// Default returns the full-scale configuration.
func Default() Config {
	return Config{
		Instructions:       2_000_000,
		Warmup:             400_000,
		GatingInstructions: 600_000,
		GatingWarmup:       200_000,
		SMTWarmupCycles:    200_000,
		SMTMeasureCycles:   800_000,
		RefreshPeriod:      200_000,
		GateThresholds:     []uint32{3, 7, 11, 15},
		GateCounts:         []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		ProbTargets:        probTargets(0.02, 0.90, 0.04),
		Machine:            nil,
	}
}

// Quick returns a configuration small enough for tests: statistics are
// noisier but every code path runs.
func Quick() Config {
	return Config{
		Instructions:       150_000,
		Warmup:             60_000,
		GatingInstructions: 60_000,
		GatingWarmup:       25_000,
		SMTWarmupCycles:    20_000,
		SMTMeasureCycles:   50_000,
		RefreshPeriod:      20_000,
		GateThresholds:     []uint32{3, 15},
		GateCounts:         []int{2, 6},
		ProbTargets:        []float64{0.10, 0.40},
		Machine:            nil,
	}
}

func probTargets(lo, hi, step float64) []float64 {
	var out []float64
	for p := lo; p <= hi+1e-9; p += step {
		out = append(out, p)
	}
	return out
}

func (c Config) machine() cpu.Config {
	if c.Machine != nil {
		return *c.Machine
	}
	return cpu.DefaultConfig()
}

// Runner executes one experiment and writes its report.
type Runner func(cfg Config, w io.Writer) error

var registry = map[string]Runner{}

func register(name string, r Runner) {
	if _, dup := registry[name]; dup {
		panic("experiments: duplicate " + name)
	}
	registry[name] = r
}

// Has reports whether name is a registered experiment — callers that
// route requests (paco-serve distinguishing 404 from execution failure)
// check before running.
func Has(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, cfg Config, w io.Writer) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg, w)
}
