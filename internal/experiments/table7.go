package experiments

import (
	"fmt"
	"io"

	"paco/internal/campaign"
	"paco/internal/core"
	"paco/internal/metrics"
)

func init() {
	register("table7", Table7Report)
	register("fig8", Figure8Report)
	register("fig9", Figure9Report)
}

// Table7Row is one benchmark's accuracy measurement: PaCo RMS error plus
// the overall (all control flow) and conditional branch mispredict rates,
// exactly the columns of the paper's Table 7.
type Table7Row struct {
	Benchmark   string
	RMS         float64
	OverallMR   float64
	CondMR      float64
	Reliability *metrics.Reliability
}

// Table7 is the full accuracy study; Cumulative merges every benchmark's
// instances (the paper's Figure 9(f)).
type Table7 struct {
	Rows       []Table7Row
	MeanRMS    float64
	Cumulative *metrics.Reliability
}

// RunTable7 measures PaCo's goodpath-probability accuracy on every
// benchmark: at each instance (fetch or execute event) the predicted
// probability is compared against the goodpath oracle in a reliability
// diagram, whose occupancy-weighted RMS error is the paper's metric.
func RunTable7(cfg Config, benchmarks []string) (*Table7, error) {
	if benchmarks == nil {
		benchmarks = allBenchmarks()
	}
	rels := make([]*metrics.Reliability, len(benchmarks))
	jobs := make([]campaign.Job, len(benchmarks))
	for i, name := range benchmarks {
		i := i
		jobs[i] = benchJob(cfg, name, cfg.Instructions, cfg.Warmup, func() campaign.Hooks {
			paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: cfg.RefreshPeriod})
			rel := &metrics.Reliability{}
			rels[i] = rel
			return relHooks([]core.Estimator{paco}, []core.Probabilistic{paco}, []*metrics.Reliability{rel})
		})
	}
	results, err := runJobs(cfg, jobs)
	if err != nil {
		return nil, err
	}
	out := &Table7{Cumulative: &metrics.Reliability{}}
	var rmsSum float64
	for i, name := range benchmarks {
		st := results[i].Stats
		rel := rels[i]
		row := Table7Row{
			Benchmark:   name,
			RMS:         rel.RMSError(),
			OverallMR:   st.CtrlMispredictRate(),
			CondMR:      st.CondMispredictRate(),
			Reliability: rel,
		}
		out.Rows = append(out.Rows, row)
		out.Cumulative.Merge(rel)
		rmsSum += row.RMS
	}
	out.MeanRMS = rmsSum / float64(len(out.Rows))
	return out, nil
}

// Table renders the paper's Table 7 columns.
func (t7 *Table7) Table() *metrics.Table {
	t := metrics.NewTable("Benchmark", "PaCo RMS Error", "Overall Mispredict %", "Cond. Br. Mispredict %")
	for _, r := range t7.Rows {
		t.Row(r.Benchmark, r.RMS, fmt.Sprintf("%.2f", r.OverallMR), fmt.Sprintf("%.2f", r.CondMR))
	}
	t.Row("mean", t7.MeanRMS, "", "")
	return t
}

// Row returns the named benchmark's row, if present.
func (t7 *Table7) Row(name string) (Table7Row, bool) {
	for _, r := range t7.Rows {
		if r.Benchmark == name {
			return r, true
		}
	}
	return Table7Row{}, false
}

// Table7Report writes the full accuracy table.
func Table7Report(cfg Config, w io.Writer) error {
	t7, err := RunTable7(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 7: RMS error between predicted and actual goodpath probabilities")
	fmt.Fprintln(w, "(paper: mean 0.0377; best on twolf/vortex/vpr, worst on gcc/gap/perlbmk)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, t7.Table().String())
	return err
}

// reliabilityTable renders a reliability diagram as rows of (predicted,
// observed, occupancy) — the scatter plot plus histogram of Figures 8/9.
func reliabilityTable(rel *metrics.Reliability) *metrics.Table {
	t := metrics.NewTable("predicted %", "observed %", "instances")
	for _, p := range rel.Points() {
		t.Row(p.Predicted, fmt.Sprintf("%.1f", p.Observed), p.Count)
	}
	return t
}

// Figure8Report writes parser's reliability diagram (the paper's worked
// example).
func Figure8Report(cfg Config, w io.Writer) error {
	t7, err := RunTable7(cfg, []string{"parser"})
	if err != nil {
		return err
	}
	row := t7.Rows[0]
	fmt.Fprintf(w, "Figure 8: reliability diagram for parser (RMS error %.4f)\n", row.RMS)
	fmt.Fprintln(w, "(paper: points hug the slope-1 line; most instances at high predicted probability)")
	fmt.Fprintln(w)
	_, err = io.WriteString(w, reliabilityTable(row.Reliability).String())
	return err
}

// Figure9Report writes the representative diagrams plus the cumulative
// one.
func Figure9Report(cfg Config, w io.Writer) error {
	t7, err := RunTable7(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: reliability diagrams (representative benchmarks + cumulative)")
	fmt.Fprintln(w, "(paper: twolf/vprRoute near-perfect; crafty good; gcc/perlbmk less accurate;")
	fmt.Fprintln(w, " systematic underestimation below ~10% predicted probability)")
	for _, name := range []string{"twolf", "vprRoute", "crafty", "gcc", "perlbmk"} {
		if row, ok := t7.Row(name); ok {
			fmt.Fprintf(w, "\n--- %s (RMS %.4f) ---\n", name, row.RMS)
			if _, err := io.WriteString(w, reliabilityTable(row.Reliability).String()); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(w, "\n--- cumulative (all benchmarks, RMS %.4f) ---\n", t7.Cumulative.RMSError())
	_, err = io.WriteString(w, reliabilityTable(t7.Cumulative).String())
	return err
}
