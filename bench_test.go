// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact. Each iteration runs
// the experiment at reduced scale and reports its headline numbers as
// custom metrics, so `go test -bench=. -benchmem` doubles as a smoke
// reproduction; use cmd/paco or cmd/paco-repro for full-scale runs.
package paco

import (
	"testing"

	"paco/internal/experiments"
	"paco/internal/smt"
)

// benchConfig is sized so a single iteration of the heaviest benchmark
// stays in the seconds range.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Instructions = 250_000
	cfg.Warmup = 80_000
	cfg.GatingInstructions = 80_000
	cfg.GatingWarmup = 30_000
	cfg.SMTWarmupCycles = 15_000
	cfg.SMTMeasureCycles = 60_000
	return cfg
}

// BenchmarkFigure2 regenerates the per-MDC-bucket mispredict rates.
func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure2(cfg, []string{"gcc", "vortex", "twolf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Rate["twolf"][0], "twolf-mdc0-%")
		b.ReportMetric(f.Rate["vortex"][15], "vortex-mdc15-%")
	}
}

// BenchmarkFigure3a regenerates P(goodpath | counter==5) across
// benchmarks.
func BenchmarkFigure3a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure3a(cfg, experiments.DefaultCounterProbe(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Label == "gzip" {
				b.ReportMetric(r.Goodpath, "gzip-%")
			}
			if r.Label == "vprRoute" {
				b.ReportMetric(r.Goodpath, "vprRoute-%")
			}
		}
	}
}

// BenchmarkFigure3b regenerates the same quantity across program phases.
func BenchmarkFigure3b(b *testing.B) {
	cfg := benchConfig()
	cfg.Instructions = 1_100_000 // cover both mcf phases
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure3b(cfg, experiments.DefaultCounterProbe())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Label == "mcf_phase1" {
				b.ReportMetric(r.Goodpath, "mcf-ph1-%")
			}
			if r.Label == "mcf_phase2" {
				b.ReportMetric(r.Goodpath, "mcf-ph2-%")
			}
		}
	}
}

// BenchmarkTable7 regenerates PaCo's RMS error study over all 12
// benchmarks.
func BenchmarkTable7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t7, err := experiments.RunTable7(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t7.MeanRMS, "mean-RMS")
	}
}

// BenchmarkFigure8 regenerates parser's reliability diagram.
func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t7, err := experiments.RunTable7(cfg, []string{"parser"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t7.Rows[0].RMS, "parser-RMS")
	}
}

// BenchmarkFigure9 regenerates the representative reliability diagrams and
// the cumulative curve.
func BenchmarkFigure9(b *testing.B) {
	cfg := benchConfig()
	subset := []string{"twolf", "vprRoute", "crafty", "gcc", "perlbmk"}
	for i := 0; i < b.N; i++ {
		t7, err := experiments.RunTable7(cfg, subset)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t7.Cumulative.RMSError(), "cumulative-RMS")
	}
}

// BenchmarkFigure10 regenerates the pipeline gating sweep (reduced design
// space: thresholds {3,15}, two gate-counts, two PaCo targets).
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure10(cfg, []string{"gzip", "bzip2", "twolf", "perlbmk"})
		if err != nil {
			b.Fatal(err)
		}
		if p, ok := f.Best("PaCo", 0.5); ok {
			b.ReportMetric(p.BadpathReduction, "paco-badpath-red-%")
		}
		if p, ok := f.Best("JRS-thr3", 0.5); ok {
			b.ReportMetric(p.BadpathReduction, "jrs3-badpath-red-%")
		}
	}
}

// BenchmarkFigure12 regenerates the SMT fetch prioritization comparison on
// a 4-pair subset.
func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	pairs := []smt.Pair{
		{A: "gap", B: "mcf"}, {A: "gzip", B: "vprRoute"},
		{A: "bzip2", B: "crafty"}, {A: "perlbmk", B: "vortex"},
	}
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure12(cfg, pairs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Mean["PaCo"], "paco-HMWIPC")
		b.ReportMetric(f.Mean["JRS-thr3"], "jrs3-HMWIPC")
	}
}

// BenchmarkTableA1 regenerates the Appendix A variant comparison on a
// 3-benchmark subset.
func BenchmarkTableA1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunTableA1(cfg, []string{"gzip", "twolf", "vortex"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Mean.DynamicMRT, "MRT-RMS")
		b.ReportMetric(a.Mean.StaticMRT, "staticMRT-RMS")
		b.ReportMetric(a.Mean.PerBranchMRT, "perbranch-RMS")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (instructions
// per wall second show up as the inverse of ns/op scaled by the run size).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(DefaultMachineConfig())
		if err != nil {
			b.Fatal(err)
		}
		spec, err := Benchmark("gzip")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddThread(spec, []Estimator{NewPaCo(PaCoConfig{})}); err != nil {
			b.Fatal(err)
		}
		m.Run(200_000, 0)
	}
}

// BenchmarkPredictorHotPath measures the cost of the PaCo fetch/resolve
// path itself — the per-branch overhead a host simulator pays.
func BenchmarkPredictorHotPath(b *testing.B) {
	p := NewPaCo(PaCoConfig{})
	ev := BranchEvent{PC: 0x1234, MDC: 3, Conditional: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := p.BranchFetched(ev)
		p.BranchResolved(c)
	}
}

// BenchmarkAblateRefresh measures accuracy sensitivity to the MRT refresh
// period (paper footnote 5).
func BenchmarkAblateRefresh(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblateRefresh(cfg, []uint64{50_000, 200_000}, []string{"gzip", "twolf"})
		if err != nil {
			b.Fatal(err)
		}
		_ = tbl
	}
}

// BenchmarkAblateThrottle compares all-or-nothing gating with selective
// throttling.
func BenchmarkAblateThrottle(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateThrottle(cfg, []string{"gzip", "twolf"}); err != nil {
			b.Fatal(err)
		}
	}
}
