package paco_test

import (
	"fmt"

	"paco"
)

// ExampleNewPaCo shows the embedding API: feed branch lifecycle events and
// read the goodpath probability.
func ExampleNewPaCo() {
	p := paco.NewPaCo(paco.PaCoConfig{})

	// Six cold (MDC 0) conditional branches enter the pipeline.
	ev := paco.BranchEvent{PC: 0x1000, MDC: 0, Conditional: true}
	var live []paco.Contribution
	for i := 0; i < 6; i++ {
		live = append(live, p.BranchFetched(ev))
	}
	fmt.Printf("six unresolved cold branches: P(goodpath) < 1: %v\n", p.GoodpathProb() < 1)

	// They all resolve; certainty returns.
	for _, c := range live {
		p.BranchResolved(c)
	}
	fmt.Printf("drained: P(goodpath) = %.0f\n", p.GoodpathProb())
	// Output:
	// six unresolved cold branches: P(goodpath) < 1: true
	// drained: P(goodpath) = 1
}

// ExampleEncodeProbThreshold shows how applications use encoded
// thresholds: one conversion, then integer compares.
func ExampleEncodeProbThreshold() {
	threshold := paco.EncodeProbThreshold(0.5) // gate below 50% goodpath

	p := paco.NewPaCo(paco.PaCoConfig{})
	ev := paco.BranchEvent{PC: 0x2000, MDC: 0, Conditional: true}
	for i := 0; i < 10; i++ {
		p.BranchFetched(ev)
		if p.EncodedSum() > threshold {
			fmt.Printf("gated after %d unresolved branches\n", i+1)
			break
		}
	}
	// Output:
	// gated after 2 unresolved branches
}

// ExampleOpenSession scores a small NDJSON event stream through a live
// estimator session: PaCo next to the count baseline, one fold, final
// snapshot at Close.
func ExampleOpenSession() {
	s, err := paco.OpenSession(paco.SessionConfig{
		Estimators: []paco.SessionEstimator{{Kind: "paco"}, {Kind: "count", Threshold: 3}},
	})
	if err != nil {
		panic(err)
	}

	events := `{"kind":"fetch","tag":1,"pc":16448,"mdc":3,"conditional":true}
{"kind":"cycle","cycle":3}
{"kind":"resolve","tag":1}
{"kind":"retire","pc":16448,"mdc":3,"conditional":true,"correct":true}
`
	if err := s.IngestNDJSON([]byte(events)); err != nil {
		panic(err)
	}
	final := s.Close()
	fmt.Printf("events %d, retires %d, final %v\n", final.Events, final.Retires, final.Final)
	for _, e := range final.Estimators {
		if e.PGoodpath != nil {
			fmt.Printf("%s: P(goodpath) = %.0f\n", e.Kind, *e.PGoodpath)
		}
	}
	// Output:
	// events 4, retires 1, final true
	// paco: P(goodpath) = 1
}

// ExampleNewMachine runs a bundled benchmark model on the paper's Table 6
// machine.
func ExampleNewMachine() {
	m, err := paco.NewMachine(paco.DefaultMachineConfig())
	if err != nil {
		panic(err)
	}
	spec, err := paco.Benchmark("vortex")
	if err != nil {
		panic(err)
	}
	tid, err := m.AddThread(spec, nil)
	if err != nil {
		panic(err)
	}
	m.Run(100_000, 0)
	st := m.ThreadStats(tid)
	fmt.Printf("retired >= 100k: %v, mispredict rate sane: %v\n",
		st.RetiredGood >= 100_000, st.CondMispredictRate() < 20)
	// Output:
	// retired >= 100k: true, mispredict rate sane: true
}
